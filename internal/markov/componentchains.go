package markov

import "fmt"

// NewComponentPathChain builds the constant-rate chain of one shared
// component with `paths` redundant instances (dual porting, paired
// expanders): state k is "k instances failed", each up instance fails at
// rate lambda, each down instance is repaired (independent crews) at rate
// mu, and the all-paths-down state is absorbing. Its absorption
// probability from state 0 over the mission is the probability the
// component — and therefore every drive it carries — goes dark at least
// once, which for a component covering more slots than the group's
// redundancy is exactly the simulator's first-unavailability probability.
func NewComponentPathChain(paths int, lambda, mu float64) (*Chain, error) {
	if paths < 1 {
		return nil, fmt.Errorf("markov: component path chain needs >= 1 path, got %d", paths)
	}
	labels := make([]string, paths+1)
	for k := range labels {
		labels[k] = fmt.Sprintf("%d-down", k)
	}
	c, err := New(paths+1, labels)
	if err != nil {
		return nil, err
	}
	for k := 0; k < paths; k++ {
		if err := c.AddRate(k, k+1, float64(paths-k)*lambda); err != nil {
			return nil, err
		}
		if k > 0 {
			if err := c.AddRate(k, k-1, float64(k)*mu); err != nil {
				return nil, err
			}
		}
	}
	if err := c.SetAbsorbing(paths); err != nil {
		return nil, err
	}
	return c, nil
}

// NewParallelRepairChain builds the general m-of-n birth–death data-loss
// chain with concurrent repairs: state k is "k drives failed", live drives
// fail at (m-k)·lambda, every failed drive rebuilds on its own crew so
// the repair rate is k·mu, and redundancy+1 concurrent failures are
// absorbing. Unlike NewDoubleParityChain's single repair crew, this chain
// is exact for the simulator's per-slot restore process when every
// distribution is exponential, so low-rate cross-validation can use tight
// statistical tolerances instead of a directional allowance.
func NewParallelRepairChain(totalDrives, redundancy int, lambda, mu float64) (*Chain, error) {
	if redundancy < 1 {
		return nil, fmt.Errorf("markov: parallel-repair chain needs redundancy >= 1, got %d", redundancy)
	}
	if totalDrives <= redundancy {
		return nil, fmt.Errorf("markov: parallel-repair chain needs more than %d drives, got %d", redundancy, totalDrives)
	}
	loss := redundancy + 1
	labels := make([]string, loss+1)
	for k := 0; k < loss; k++ {
		labels[k] = fmt.Sprintf("%d-down", k)
	}
	labels[loss] = "data-loss"
	c, err := New(loss+1, labels)
	if err != nil {
		return nil, err
	}
	m := float64(totalDrives)
	for k := 0; k < loss; k++ {
		if err := c.AddRate(k, k+1, (m-float64(k))*lambda); err != nil {
			return nil, err
		}
		if k > 0 {
			if err := c.AddRate(k, k-1, float64(k)*mu); err != nil {
				return nil, err
			}
		}
	}
	if err := c.SetAbsorbing(loss); err != nil {
		return nil, err
	}
	return c, nil
}

// NewBoundedRepairChain builds the m-of-n birth–death data-loss chain
// with a bounded repair crew: state k is "k drives failed", live drives
// fail at (m-k)·lambda, at most `crews` rebuilds run concurrently so the
// repair rate is min(k, crews)·mu, and redundancy+1 concurrent failures
// are absorbing. crews >= redundancy reduces to NewParallelRepairChain
// (every transient state has k <= redundancy crews busy).
//
// This is the analytic reference for the fleet engine's contended repair
// server on a single group: the engine draws each TTR at the failure
// instant and runs it in full from the repair-slot grant, which for
// exponential TTR is — by memorylessness — indistinguishable from
// rate-mu repair from the grant, and its greedy slot grants keep exactly
// min(k, crews) rebuilds active. Its absorption probability from state 0
// over the mission therefore equals the simulated P(at least one DDF)
// exactly, not just asymptotically.
func NewBoundedRepairChain(totalDrives, redundancy, crews int, lambda, mu float64) (*Chain, error) {
	if redundancy < 1 {
		return nil, fmt.Errorf("markov: bounded-repair chain needs redundancy >= 1, got %d", redundancy)
	}
	if totalDrives <= redundancy {
		return nil, fmt.Errorf("markov: bounded-repair chain needs more than %d drives, got %d", redundancy, totalDrives)
	}
	if crews < 1 {
		return nil, fmt.Errorf("markov: bounded-repair chain needs >= 1 repair crew, got %d", crews)
	}
	loss := redundancy + 1
	labels := make([]string, loss+1)
	for k := 0; k < loss; k++ {
		labels[k] = fmt.Sprintf("%d-down", k)
	}
	labels[loss] = "data-loss"
	c, err := New(loss+1, labels)
	if err != nil {
		return nil, err
	}
	m := float64(totalDrives)
	for k := 0; k < loss; k++ {
		if err := c.AddRate(k, k+1, (m-float64(k))*lambda); err != nil {
			return nil, err
		}
		if k > 0 {
			busy := k
			if busy > crews {
				busy = crews
			}
			if err := c.AddRate(k, k-1, float64(busy)*mu); err != nil {
				return nil, err
			}
		}
	}
	if err := c.SetAbsorbing(loss); err != nil {
		return nil, err
	}
	return c, nil
}

// State indices for the shared-component data-loss chain.
const (
	// SCAllGoodUp: no drive failed, component up.
	SCAllGoodUp = 0
	// SCDegradedUp: one drive rebuilding, component up.
	SCDegradedUp = 1
	// SCAllGoodDown: no drive failed, component down (group unavailable).
	SCAllGoodDown = 2
	// SCDegradedDown: one drive failed, component down — the rebuild makes
	// no progress while the drives are inaccessible, so there is no repair
	// transition out of this state until the component comes back.
	SCDegradedDown = 3
	// SCDataLoss: a second drive failed while one was down (absorbing).
	SCDataLoss = 4
)

// NewSharedComponentChain builds the constant-rate data-loss chain of an
// N+1 group (n data drives, redundancy 1) whose every drive sits behind
// one single-path shared component: drives fail at rate lambda and are
// repaired at rate mu, the component fails at rate lambdaC and is
// repaired at rate muC, and — the coupling — a drive rebuild is paused
// while the component is down. Because the simulator's paused rebuild
// resumes with its remaining exponential repair time, memorylessness
// makes this chain exact for the simulated model (exponential everywhere,
// no latent defects): its absorption probability from SCAllGoodUp over
// the mission equals the simulated P(at least one DDF).
//
// Drive failures keep occurring while the component is down (the platters
// spin; the data is inaccessible, not gone), which is why the down states
// still advance toward SCDataLoss.
func NewSharedComponentChain(n int, lambda, mu, lambdaC, muC float64) (*Chain, error) {
	if n < 1 {
		return nil, fmt.Errorf("markov: shared-component chain needs data drives N >= 1, got %d", n)
	}
	c, err := New(5, []string{"all-good/up", "degraded/up", "all-good/down", "degraded/down", "data-loss"})
	if err != nil {
		return nil, err
	}
	total := float64(n + 1)
	add := func(i, j int, rate float64) {
		if err == nil {
			err = c.AddRate(i, j, rate)
		}
	}
	add(SCAllGoodUp, SCDegradedUp, total*lambda)
	add(SCAllGoodUp, SCAllGoodDown, lambdaC)
	add(SCDegradedUp, SCAllGoodUp, mu)
	add(SCDegradedUp, SCDataLoss, float64(n)*lambda)
	add(SCDegradedUp, SCDegradedDown, lambdaC)
	add(SCAllGoodDown, SCAllGoodUp, muC)
	add(SCAllGoodDown, SCDegradedDown, total*lambda)
	add(SCDegradedDown, SCDegradedUp, muC) // component repaired; rebuild resumes
	add(SCDegradedDown, SCDataLoss, float64(n)*lambda)
	if err != nil {
		return nil, err
	}
	if err := c.SetAbsorbing(SCDataLoss); err != nil {
		return nil, err
	}
	return c, nil
}
