package scrub

import (
	"math"
	"testing"

	"raidrel/internal/core"
	"raidrel/internal/hdd"
)

func TestDisabledPolicy(t *testing.T) {
	_, enabled, err := Disabled().Spec()
	if err != nil {
		t.Fatal(err)
	}
	if enabled {
		t.Error("disabled policy enabled")
	}
	params, err := Disabled().Apply(core.BaseCase())
	if err != nil {
		t.Fatal(err)
	}
	if params.Scrub {
		t.Error("Apply left scrub on")
	}
}

func TestPeriodicPolicy(t *testing.T) {
	spec, enabled, err := Periodic(168).Spec()
	if err != nil {
		t.Fatal(err)
	}
	if !enabled {
		t.Fatal("periodic policy disabled")
	}
	if spec.Scale != 168 || spec.Shape != 3 || spec.Location != 6 {
		t.Errorf("spec = %+v", spec)
	}
	params, err := Periodic(48).Apply(core.BaseCase())
	if err != nil {
		t.Fatal(err)
	}
	if !params.Scrub || params.TTScrub.Scale != 48 {
		t.Errorf("applied = %+v", params.TTScrub)
	}
	// Model must accept the result.
	if _, err := core.New(params); err != nil {
		t.Errorf("model rejected policy params: %v", err)
	}
}

func TestAggressivePolicyKeepsLocationBelowScale(t *testing.T) {
	spec, enabled, err := Periodic(4).Spec()
	if err != nil {
		t.Fatal(err)
	}
	if !enabled || spec.Location >= spec.Scale {
		t.Errorf("spec = %+v", spec)
	}
}

func TestDriveDerivedMinimum(t *testing.T) {
	drive := hdd.SATA500GB
	p := Policy{PeriodHours: 168, Drive: &drive, ForegroundShare: 0.5}
	spec, enabled, err := p.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if !enabled {
		t.Fatal("disabled")
	}
	// 500 GB at 25 MB/s effective = ~5.56 h.
	want := 500e9 / (50e6 * 0.5) / 3600
	if math.Abs(spec.Location-want) > 0.01 {
		t.Errorf("location = %v, want %v", spec.Location, want)
	}
}

func TestPolicyValidation(t *testing.T) {
	if _, _, err := (Policy{PeriodHours: -1}).Spec(); err == nil {
		t.Error("negative period accepted")
	}
	if _, _, err := (Policy{PeriodHours: 10, MinHours: -2}).Spec(); err == nil {
		t.Error("negative minimum accepted")
	}
	if _, _, err := (Policy{PeriodHours: math.Inf(1)}).Spec(); err == nil {
		t.Error("infinite period accepted")
	}
}
