// Package scrub builds time-to-scrub distributions from operational scrub
// policies. The paper's §6.4: scrubbing is a background pass whose
// duration has a hard minimum (full-disk read time at the available
// bandwidth) and a policy-imposed characteristic period; the shape
// parameter 3 gives the near-normal spread the paper uses.
package scrub

import (
	"fmt"
	"math"

	"raidrel/internal/core"
	"raidrel/internal/hdd"
)

// Policy describes when latent defects get corrected.
type Policy struct {
	// PeriodHours is the characteristic time from defect creation to
	// correction (the paper sweeps 12/48/168/336). Zero disables
	// scrubbing.
	PeriodHours float64
	// MinHours is the hard minimum full-pass duration; zero derives it
	// from Drive and ForegroundShare when a drive is given.
	MinHours float64
	// Drive optionally derives MinHours from drive geometry.
	Drive *hdd.Drive
	// ForegroundShare is the bandwidth consumed by user IO while
	// scrubbing, [0, 1).
	ForegroundShare float64
}

// Disabled returns the no-scrub policy (Table 3's worst row).
func Disabled() Policy { return Policy{} }

// Periodic returns a policy correcting defects within the given
// characteristic period.
func Periodic(hours float64) Policy { return Policy{PeriodHours: hours} }

// Spec lowers the policy to the model's TTScrub Weibull spec and reports
// whether scrubbing is enabled at all.
func (p Policy) Spec() (core.WeibullSpec, bool, error) {
	if p.PeriodHours == 0 {
		return core.WeibullSpec{}, false, nil
	}
	if !(p.PeriodHours > 0) || math.IsInf(p.PeriodHours, 0) {
		return core.WeibullSpec{}, false, fmt.Errorf("scrub: invalid period %v", p.PeriodHours)
	}
	min := p.MinHours
	if min < 0 || math.IsNaN(min) {
		return core.WeibullSpec{}, false, fmt.Errorf("scrub: invalid minimum %v", min)
	}
	if min == 0 && p.Drive != nil {
		derived, err := p.Drive.MinScrubHours(p.ForegroundShare)
		if err != nil {
			return core.WeibullSpec{}, false, err
		}
		min = derived
	}
	if min == 0 {
		min = 6 // the paper's default location
	}
	if min >= p.PeriodHours {
		// A very aggressive policy cannot finish faster than the pass
		// itself; keep the location strictly below the scale.
		min = p.PeriodHours / 2
	}
	return core.WeibullSpec{Location: min, Scale: p.PeriodHours, Shape: 3}, true, nil
}

// Apply returns params with the policy installed.
func (p Policy) Apply(params core.Params) (core.Params, error) {
	spec, enabled, err := p.Spec()
	if err != nil {
		return core.Params{}, err
	}
	if !enabled {
		params.Scrub = false
		return params, nil
	}
	params.Scrub = true
	params.TTScrub = spec
	return params, nil
}
