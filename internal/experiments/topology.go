package experiments

import (
	"fmt"

	"raidrel/internal/core"
)

// TopologyRow is one row of the shared-hardware sweep: a group design with
// the same drives, the same RAID redundancy, and the same component budget,
// differing only in how the shared hardware is arranged.
type TopologyRow struct {
	Design string
	// DDFs is double disk failures per 1,000 groups over the mission —
	// actual data loss.
	DDFs float64
	// Unavail is unavailability onsets per 1,000 groups: episodes where the
	// group lost access to more slots than the redundancy covers, but the
	// data came back with the hardware. Never part of DDFs.
	Unavail float64
	// PUnavail is the probability a group saw at least one such episode.
	PUnavail float64
}

// sharedExpanderMTBF and sharedExpanderMTTR are the nominal component
// rates of the sweep: expander-class electronics (no moving parts) outlast
// drives, but a replacement is an ordered part plus a service visit, not a
// hot pull from a spares shelf.
const (
	sharedExpanderMTBF = 150000 // hours per path instance
	sharedExpanderMTTR = 72     // hours to swap one instance
)

// TopologySweep answers the enclosure-design question the flat model
// cannot see: with the group size and RAID redundancy fixed, is it better
// to hang every drive off one shared expander, or to split the group
// across dual-pathed enclosures? Drive-level DDF risk is identical across
// rows by construction — the differences are the component-caused DDF
// exposure (rebuilds pause while hardware is down) and the availability
// gap, which MTTDL-style drive-only models put at exactly zero.
func TopologySweep(opt Options) ([]TopologyRow, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	base := core.BaseCase()
	exp := core.WeibullSpec{Scale: sharedExpanderMTBF, Shape: 1}
	rep := core.WeibullSpec{Scale: sharedExpanderMTTR, Shape: 1}
	all := make([]int, base.GroupSize)
	for i := range all {
		all[i] = i
	}
	half := base.GroupSize / 2

	designs := []struct {
		name string
		topo *core.TopologySpec
	}{
		{"flat (drives only)", nil},
		{"one shared expander", &core.TopologySpec{Components: []core.ComponentSpec{
			{Name: "expander", Drives: all, TTOp: exp, TTR: rep},
		}}},
		// Same component budget as above — two path instances in total —
		// spent on redundancy instead of a single point of failure.
		{"one dual-pathed expander", &core.TopologySpec{Components: []core.ComponentSpec{
			{Name: "expander", Drives: all, Paths: 2, TTOp: exp, TTR: rep},
		}}},
		// Split the group across two enclosures, each dual-pathed: an
		// enclosure outage now takes out only half the slots.
		{"two dual-pathed enclosures", &core.TopologySpec{Components: []core.ComponentSpec{
			{Name: "enclosure-a", Drives: all[:half], Paths: 2, TTOp: exp, TTR: rep},
			{Name: "enclosure-b", Drives: all[half:], Paths: 2, TTOp: exp, TTR: rep},
		}}},
	}

	out := make([]TopologyRow, 0, len(designs))
	for _, d := range designs {
		p := base
		p.Topology = d.topo
		p.Bias.Op = opt.BiasOp
		m, err := core.New(p)
		if err != nil {
			return nil, fmt.Errorf("experiments: topology %s: %w", d.name, err)
		}
		res, err := m.Run(opt.Iterations, opt.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: topology %s: %w", d.name, err)
		}
		out = append(out, TopologyRow{
			Design:   d.name,
			DDFs:     res.DDFsPer1000GroupsAt(p.MissionHours),
			Unavail:  res.UnavailPer1000Groups(),
			PUnavail: res.GroupUnavailProbability(),
		})
	}
	return out, nil
}
