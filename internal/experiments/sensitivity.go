package experiments

import (
	"fmt"

	"raidrel/internal/core"
)

// SensitivityRow measures how the 10-year DDF count responds when one
// input moves while everything else stays at the base case — the
// "tool by which RAID designers can better evaluate the impact" of §8.
type SensitivityRow struct {
	Parameter string
	// Low/High are the DDFs per 1,000 groups with the parameter scaled
	// down/up by the sweep factor.
	Low, High float64
	// Base is the unperturbed count (shared across rows).
	Base float64
	// Swing is High - Low: the tornado-chart bar length.
	Swing float64
}

// Sensitivity perturbs each of the model's main inputs by ±factor (e.g.
// 0.5 doubles and halves) around the base case and reports the DDF swing,
// sorted by descending impact.
func Sensitivity(factor float64, opt Options) ([]SensitivityRow, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if !(factor > 0) || factor >= 1 {
		return nil, fmt.Errorf("experiments: sensitivity factor must be in (0,1), got %v", factor)
	}
	base := core.BaseCase()
	run := func(p core.Params) (float64, error) {
		p.Bias.Op = opt.BiasOp
		m, err := core.New(p)
		if err != nil {
			return 0, err
		}
		res, err := m.Run(opt.Iterations, opt.Seed)
		if err != nil {
			return 0, err
		}
		return res.DDFsPer1000GroupsAt(p.MissionHours), nil
	}
	baseline, err := run(base)
	if err != nil {
		return nil, err
	}
	lo, hi := 1-factor, 1+factor
	perturbations := []struct {
		name   string
		scaled func(p core.Params, k float64) core.Params
	}{
		{"TTOp characteristic life η", func(p core.Params, k float64) core.Params {
			p.TTOp.Scale *= k
			return p
		}},
		{"TTOp shape β", func(p core.Params, k float64) core.Params {
			p.TTOp.Shape *= k
			return p
		}},
		{"restore time (γ and η)", func(p core.Params, k float64) core.Params {
			p.TTR.Location *= k
			p.TTR.Scale *= k
			return p
		}},
		{"latent defect rate", func(p core.Params, k float64) core.Params {
			p.TTLd.Scale /= k // rate scales with k => scale divides
			return p
		}},
		{"scrub period", func(p core.Params, k float64) core.Params {
			return p.WithScrubPeriod(p.TTScrub.Scale * k)
		}},
	}
	rows := make([]SensitivityRow, 0, len(perturbations))
	for _, pert := range perturbations {
		lowV, err := run(pert.scaled(base, lo))
		if err != nil {
			return nil, fmt.Errorf("experiments: %s low: %w", pert.name, err)
		}
		highV, err := run(pert.scaled(base, hi))
		if err != nil {
			return nil, fmt.Errorf("experiments: %s high: %w", pert.name, err)
		}
		swing := highV - lowV
		if swing < 0 {
			swing = -swing
		}
		rows = append(rows, SensitivityRow{
			Parameter: pert.name,
			Low:       lowV,
			High:      highV,
			Base:      baseline,
			Swing:     swing,
		})
	}
	// Sort descending by swing (tornado order); insertion sort keeps it
	// dependency-free and the list is tiny.
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].Swing > rows[j-1].Swing; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
	return rows, nil
}
