package experiments

import (
	"fmt"

	"raidrel/internal/field"
	"raidrel/internal/fit"
	"raidrel/internal/rng"
)

// FieldPlot is one population's Weibull probability plot with its fits —
// the data behind the paper's Figs. 1 and 2.
type FieldPlot struct {
	Name        string
	Failures    int
	Suspensions int
	Points      []fit.PlotPoint
	// MRR is the straight-line (single Weibull) fit; a low R² signals the
	// non-Weibull structure the paper highlights.
	MRR fit.Params
	// MLE is the censored maximum-likelihood fit.
	MLE fit.Params
	// HasChangepoint reports whether a two-segment fit found a markedly
	// better description (mechanism change / mixture signature).
	HasChangepoint bool
	// EarlySlope and LateSlope are the two-segment plot slopes (β of each
	// regime) when a changepoint exists.
	EarlySlope, LateSlope float64
	// GoFPValue is the parametric-bootstrap Weibull goodness-of-fit
	// p-value — the quantitative form of "does it plot as a straight
	// line". Zero when the test could not run.
	GoFPValue float64
}

func analyzePopulation(p field.Population, r *rng.RNG) (FieldPlot, error) {
	obs, err := p.Observe(r)
	if err != nil {
		return FieldPlot{}, err
	}
	out := FieldPlot{Name: p.Name}
	for _, o := range obs {
		if o.Censored {
			out.Suspensions++
		} else {
			out.Failures++
		}
	}
	out.Points, err = fit.ProbabilityPlot(obs)
	if err != nil {
		return FieldPlot{}, fmt.Errorf("experiments: %s: %w", p.Name, err)
	}
	if mrr, err := fit.MedianRankRegression(obs); err == nil {
		out.MRR = mrr
	}
	if mle, err := fit.MLE(obs); err == nil {
		out.MLE = mle
	}
	if gof, err := fit.WeibullGoF(obs, 99, r); err == nil {
		out.GoFPValue = gof.PValue
	}
	if split, left, right, err := fit.Changepoint(out.Points); err == nil && split > 0 {
		out.EarlySlope, out.LateSlope = left.Slope, right.Slope
		// Declare a changepoint only when the regimes differ by 40%+ in
		// slope AND the two-segment fit explains the plot far better than
		// one line — a pure Weibull sample fails the second test even when
		// tail noise bends a short segment.
		ratio := right.Slope / left.Slope
		slopesDiffer := ratio > 1.4 || ratio < 1/1.4
		improvement := fit.ChangepointImprovement(out.Points, split, left, right)
		out.HasChangepoint = slopesDiffer && improvement > 0.5
	}
	return out, nil
}

// Figure1 regenerates Fig. 1: probability plots for the three HDD
// population archetypes (clean Weibull; mechanism change; mixture plus
// competing risks).
func Figure1(opt Options) ([]FieldPlot, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	r := rng.New(opt.Seed)
	pops := []field.Population{field.HDD1(), field.HDD2(), field.HDD3()}
	out := make([]FieldPlot, 0, len(pops))
	for _, p := range pops {
		fp, err := analyzePopulation(p, r)
		if err != nil {
			return nil, err
		}
		out = append(out, fp)
	}
	return out, nil
}

// Figure2 regenerates Fig. 2: three manufacturing vintages with the
// paper's quoted (β, η) observed through a field window, re-fitted by
// censored MLE.
func Figure2(opt Options) ([]FieldPlot, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	const window = 10000 // hours; reconciles the paper's F/S counts
	r := rng.New(opt.Seed + 1)
	out := make([]FieldPlot, 0, 3)
	for _, v := range field.PaperVintages() {
		fp, err := analyzePopulation(v.Population(window), r)
		if err != nil {
			return nil, err
		}
		out = append(out, fp)
	}
	return out, nil
}
