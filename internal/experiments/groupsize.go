package experiments

import (
	"fmt"

	"raidrel/internal/analytic"
	"raidrel/internal/core"
)

// GroupSizeRow is one row of the group-size sweep: the design question the
// paper says the model should answer ("insights as to the best RAID group
// size based on a specific manufacturer's HDDs").
type GroupSizeRow struct {
	GroupSize int
	// Simulated is DDFs per 1,000 groups over the mission.
	Simulated float64
	// PerDataDrive normalizes by the N data drives a group protects —
	// the fair metric when comparing shelf carve-ups.
	PerDataDrive float64
	// MTTDLPrediction is the eq. 3 count for the same horizon.
	MTTDLPrediction float64
}

// GroupSizeSweep runs the base case across group sizes. The MTTDL view
// says risk grows as N(N+1); the enhanced model's latent-defect coupling
// makes large groups worse still, because every additional drive both
// fails and corrupts.
func GroupSizeSweep(sizes []int, opt Options) ([]GroupSizeRow, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if len(sizes) == 0 {
		sizes = []int{4, 6, 8, 10, 14}
	}
	out := make([]GroupSizeRow, 0, len(sizes))
	for _, size := range sizes {
		if size < 2 {
			return nil, fmt.Errorf("experiments: group size %d invalid", size)
		}
		p := core.BaseCase()
		p.GroupSize = size
		p.Bias.Op = opt.BiasOp
		m, err := core.New(p)
		if err != nil {
			return nil, err
		}
		res, err := m.Run(opt.Iterations, opt.Seed)
		if err != nil {
			return nil, err
		}
		simulated := res.DDFsPer1000GroupsAt(p.MissionHours)
		mttdl, err := analytic.ExpectedDDFs(analytic.MTTDLInput{
			N: size - 1, MTBF: core.BaseMTBFHours, MTTR: 12,
		}, p.MissionHours, 1000)
		if err != nil {
			return nil, err
		}
		out = append(out, GroupSizeRow{
			GroupSize:       size,
			Simulated:       simulated,
			PerDataDrive:    simulated / float64(size-1),
			MTTDLPrediction: mttdl,
		})
	}
	return out, nil
}
