package experiments

import (
	"math"
	"testing"
)

func TestOptionsValidation(t *testing.T) {
	if _, err := Figure7(Options{Iterations: 0, CurvePoints: 5}); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := Figure9(Options{Iterations: 10, CurvePoints: 1}); err == nil {
		t.Error("one curve point accepted")
	}
}

func TestSeriesFinal(t *testing.T) {
	if (Series{}).Final() != 0 {
		t.Error("empty final")
	}
	s := Series{Values: []float64{1, 5}}
	if s.Final() != 5 {
		t.Error("final wrong")
	}
}

// Figure 6's structure: five series, the MTTDL line linear, all finals of
// the same order of magnitude (the paper: "differences ... on the order of
// 2 to 1").
func TestFigure6Shape(t *testing.T) {
	opt := Options{Iterations: 20000, Seed: 61, CurvePoints: 6}
	series, err := Figure6(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("%d series", len(series))
	}
	if series[0].Name != "MTTDL" {
		t.Fatalf("first series %q", series[0].Name)
	}
	// MTTDL line is exactly linear and ends at ~0.2764.
	mt := series[0]
	if math.Abs(mt.Final()-0.2764) > 0.001 {
		t.Errorf("MTTDL final = %v", mt.Final())
	}
	for i := 1; i < len(mt.Values); i++ {
		slope := (mt.Values[i] - mt.Values[i-1])
		want := mt.Values[1] - mt.Values[0]
		if math.Abs(slope-want) > 1e-9 {
			t.Error("MTTDL line not linear")
		}
	}
	// Simulated variants are rare-event counts; at this scale just check
	// the order of magnitude (paper: within ~2x of the MTTDL line).
	for _, s := range series[1:] {
		if s.Final() > 1.5 {
			t.Errorf("%s final %v implausibly high", s.Name, s.Final())
		}
	}
}

// Figure 7: no scrub must vastly exceed 168-h scrub, and the paper reports
// >1,200 no-scrub DDFs per 1,000 groups in 10 years.
func TestFigure7Shape(t *testing.T) {
	opt := Options{Iterations: 600, Seed: 71, CurvePoints: 6}
	series, err := Figure7(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	noScrub, scrubbed := series[0], series[1]
	if noScrub.Final() < 900 || noScrub.Final() > 1700 {
		t.Errorf("no-scrub final = %v, paper reports >1,200", noScrub.Final())
	}
	if scrubbed.Final() > noScrub.Final()/4 {
		t.Errorf("scrubbed %v not far below unscrubbed %v", scrubbed.Final(), noScrub.Final())
	}
	// Both curves are cumulative and non-linear upward (super-linear).
	for _, s := range series {
		for i := 1; i < len(s.Values); i++ {
			if s.Values[i] < s.Values[i-1] {
				t.Fatalf("%s decreases", s.Name)
			}
		}
	}
}

// Figure 8: the ROCOF of the latent-defect cases rises over the mission.
// The no-scrub case must show a decisive Crow-AMSAA growth exponent; the
// scrubbed case's windowed trend is Monte Carlo noise at this scale, so
// only its fit sanity is checked.
func TestFigure8Increasing(t *testing.T) {
	opt := Options{Iterations: 600, Seed: 81, CurvePoints: 6}
	series, err := Figure8(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 10 {
			t.Errorf("%s has %d windows", s.Name, len(s.Points))
		}
		if s.PowerLaw.Events == 0 {
			t.Errorf("%s: power-law fit missing", s.Name)
		}
		if s.PowerLaw.Beta < 0.8 {
			t.Errorf("%s: implausible growth exponent %v", s.Name, s.PowerLaw.Beta)
		}
	}
	noScrub := series[0]
	if !noScrub.Increasing {
		t.Error("no-scrub ROCOF not increasing")
	}
	if noScrub.PowerLaw.Beta <= 1.05 || noScrub.GrowthZ < 2 {
		t.Errorf("no-scrub growth not decisive: β = %v, z = %v",
			noScrub.PowerLaw.Beta, noScrub.GrowthZ)
	}
}

// Figure 9: DDFs decrease monotonically as the scrub period shrinks.
func TestFigure9Ordering(t *testing.T) {
	opt := Options{Iterations: 800, Seed: 91, CurvePoints: 4}
	series, err := Figure9(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("%d series", len(series))
	}
	for i := 1; i < len(series); i++ {
		if series[i].Final() >= series[i-1].Final() {
			t.Errorf("scrub sweep not monotone: %s %v vs %s %v",
				series[i].Name, series[i].Final(), series[i-1].Name, series[i-1].Final())
		}
	}
}

// Figure 10: smaller TTOp shape at fixed characteristic life yields more
// DDFs over the window; the sweep must be monotone in β.
func TestFigure10Ordering(t *testing.T) {
	opt := Options{Iterations: 800, Seed: 101, CurvePoints: 4}
	series, err := Figure10(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("%d series", len(series))
	}
	for i := 1; i < len(series); i++ {
		if series[i].Final() >= series[i-1].Final() {
			t.Errorf("β sweep not monotone: %v then %v",
				series[i-1].Final(), series[i].Final())
		}
	}
}

// Group-size sweep: DDFs grow super-linearly with group size, and larger
// groups are worse even per protected data drive.
func TestGroupSizeSweep(t *testing.T) {
	rows, err := GroupSizeSweep([]int{4, 8, 14}, Options{Iterations: 600, Seed: 111, CurvePoints: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Simulated <= rows[i-1].Simulated {
			t.Errorf("absolute risk not increasing: %v then %v",
				rows[i-1].Simulated, rows[i].Simulated)
		}
		if rows[i].PerDataDrive <= rows[i-1].PerDataDrive {
			t.Errorf("per-drive risk not increasing: %v then %v",
				rows[i-1].PerDataDrive, rows[i].PerDataDrive)
		}
		if rows[i].MTTDLPrediction <= rows[i-1].MTTDLPrediction {
			t.Error("MTTDL column not increasing")
		}
	}
	// The model's risk dwarfs MTTDL at every size.
	for _, r := range rows {
		if r.Simulated < 100*r.MTTDLPrediction {
			t.Errorf("N+1=%d: simulated %v not >> MTTDL %v",
				r.GroupSize, r.Simulated, r.MTTDLPrediction)
		}
	}
	if _, err := GroupSizeSweep([]int{1}, Reduced()); err == nil {
		t.Error("group size 1 accepted")
	}
	// Default sizes apply when none are given.
	def, err := GroupSizeSweep(nil, Options{Iterations: 50, Seed: 1, CurvePoints: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(def) != 5 {
		t.Errorf("default sweep has %d rows", len(def))
	}
}

// The topology sweep's design ordering is its whole point: a flat group
// has no unavailability at all, a single shared expander has lots, and
// spending the same two path instances on redundancy (one dual-pathed
// expander, or two dual-pathed enclosures) collapses the episode rate by
// orders of magnitude without touching the RAID redundancy.
func TestTopologySweep(t *testing.T) {
	rows, err := TopologySweep(Options{Iterations: 2000, Seed: 7, CurvePoints: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	flat, shared, dual, split := rows[0], rows[1], rows[2], rows[3]
	if flat.Unavail != 0 || flat.PUnavail != 0 {
		t.Errorf("flat design reports unavailability: %+v", flat)
	}
	if shared.PUnavail < 0.2 {
		t.Errorf("shared expander barely unavailable (p=%v); rates too cold to test anything", shared.PUnavail)
	}
	for _, redundant := range []TopologyRow{dual, split} {
		if redundant.Unavail >= shared.Unavail/10 {
			t.Errorf("%s: %v onsets/1000 not far below shared expander's %v",
				redundant.Design, redundant.Unavail, shared.Unavail)
		}
	}
	// Data-loss risk is dominated by the drives in every design; the
	// component layer must not multiply it (pauses stretch the exposure
	// window only while a component is actually down).
	for _, r := range rows[1:] {
		if r.DDFs > 2*flat.DDFs {
			t.Errorf("%s: DDFs %v wildly above flat %v", r.Design, r.DDFs, flat.DDFs)
		}
	}
}

// Table 3: ratios must reproduce the paper's ordering and magnitudes —
// no-scrub in the thousands, 168-h scrub in the hundreds, faster scrubs
// lower, everything far above 1.
func TestTable3Ratios(t *testing.T) {
	opt := Options{Iterations: 4000, Seed: 31, CurvePoints: 4}
	rows, err := Table3(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Assumptions != "MTTDL" || math.Abs(rows[0].FirstYear-0.0277) > 0.001 {
		t.Errorf("MTTDL row = %+v", rows[0])
	}
	noScrub := rows[1]
	if noScrub.Ratio < 1500 {
		t.Errorf("no-scrub ratio = %v, paper reports >2,500", noScrub.Ratio)
	}
	scrub168 := rows[3]
	if scrub168.Assumptions != "168 h scrub" {
		t.Fatalf("row 3 = %q", scrub168.Assumptions)
	}
	if scrub168.Ratio < 200 || scrub168.Ratio > 800 {
		t.Errorf("168-h ratio = %v, paper reports >360", scrub168.Ratio)
	}
	// Monotone decrease from no-scrub through 12-h scrub.
	for i := 2; i < len(rows); i++ {
		if rows[i].FirstYear >= rows[i-1].FirstYear {
			t.Errorf("row %d (%s) not below row %d", i, rows[i].Assumptions, i-1)
		}
	}
}

// Sensitivity: the latent-defect rate and scrub period dominate the
// tornado; all perturbations move the count in the physically sensible
// direction.
func TestSensitivity(t *testing.T) {
	rows, err := Sensitivity(0.5, Options{Iterations: 1200, Seed: 121, CurvePoints: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	// Rows come sorted by swing.
	for i := 1; i < len(rows); i++ {
		if rows[i].Swing > rows[i-1].Swing {
			t.Error("rows not sorted by swing")
		}
	}
	byName := make(map[string]SensitivityRow, len(rows))
	for _, r := range rows {
		byName[r.Parameter] = r
		if r.Base <= 0 {
			t.Fatalf("%s: non-positive base %v", r.Parameter, r.Base)
		}
	}
	// Directions: more defects => more DDFs; longer scrub period => more;
	// longer drive life => fewer. (Restore time has no directional
	// assertion: in the LdOp-dominated base case it only touches the rare
	// op+op path, so its swing is within Monte Carlo noise — itself a
	// finding the tornado makes visible.)
	if r := byName["latent defect rate"]; r.High <= r.Low {
		t.Errorf("defect rate direction wrong: %+v", r)
	}
	if r := byName["scrub period"]; r.High <= r.Low {
		t.Errorf("scrub period direction wrong: %+v", r)
	}
	if r := byName["TTOp characteristic life η"]; r.High >= r.Low {
		t.Errorf("drive life direction wrong: %+v", r)
	}
	// The two latent-defect knobs must out-swing the restore-time knob
	// (the paper: the latent rate "may be 100 times greater" in impact).
	if byName["restore time (γ and η)"].Swing > byName["latent defect rate"].Swing {
		t.Error("restore time should not dominate the defect rate")
	}
	if _, err := Sensitivity(0, Reduced()); err == nil {
		t.Error("zero factor accepted")
	}
	if _, err := Sensitivity(1.5, Reduced()); err == nil {
		t.Error("factor >= 1 accepted")
	}
}

// Figure 1: HDD #1 plots straight; HDD #2 and #3 show changepoints.
func TestFigure1Structure(t *testing.T) {
	opt := Options{Iterations: 1, Seed: 11, CurvePoints: 2}
	plots, err := Figure1(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(plots) != 3 {
		t.Fatalf("%d plots", len(plots))
	}
	hdd1 := plots[0]
	if hdd1.MRR.R2 < 0.95 {
		t.Errorf("HDD #1 R² = %v; should plot straight", hdd1.MRR.R2)
	}
	if math.Abs(hdd1.MLE.Shape-0.9) > 0.08 {
		t.Errorf("HDD #1 MLE β = %v, want ~0.9", hdd1.MLE.Shape)
	}
	if !plots[1].HasChangepoint {
		t.Error("HDD #2 should show a mechanism change")
	}
	if plots[1].LateSlope <= plots[1].EarlySlope {
		t.Error("HDD #2 late slope should steepen (upturn)")
	}
	if !plots[2].HasChangepoint {
		t.Error("HDD #3 should show structure")
	}
	// The quantitative "straight line" verdicts: HDD #1 passes the Weibull
	// GoF test, HDD #2 and #3 fail it.
	if plots[0].GoFPValue < 0.05 {
		t.Errorf("HDD #1 GoF p = %v; should not reject", plots[0].GoFPValue)
	}
	for _, i := range []int{1, 2} {
		if plots[i].GoFPValue == 0 || plots[i].GoFPValue >= 0.05 {
			t.Errorf("%s GoF p = %v; should reject", plots[i].Name, plots[i].GoFPValue)
		}
	}
	for _, p := range plots {
		if p.Failures < 50 {
			t.Errorf("%s: only %d failures", p.Name, p.Failures)
		}
		if p.Suspensions == 0 {
			t.Errorf("%s: expected censoring", p.Name)
		}
	}
}

// Figure 2: censored MLE recovers each vintage's β within a tolerance, and
// the β ordering (vintage 1 < 2 < 3) is preserved.
func TestFigure2VintageRecovery(t *testing.T) {
	opt := Options{Iterations: 1, Seed: 21, CurvePoints: 2}
	plots, err := Figure2(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(plots) != 3 {
		t.Fatalf("%d plots", len(plots))
	}
	want := []float64{1.0987, 1.2162, 1.4873}
	for i, p := range plots {
		if p.MLE.Shape == 0 {
			t.Fatalf("%s: no MLE fit", p.Name)
		}
		if math.Abs(p.MLE.Shape-want[i])/want[i] > 0.15 {
			t.Errorf("%s: β = %v, want ~%v", p.Name, p.MLE.Shape, want[i])
		}
	}
	if !(plots[0].MLE.Shape < plots[1].MLE.Shape && plots[1].MLE.Shape < plots[2].MLE.Shape) {
		t.Error("vintage β ordering lost")
	}
	// Failure counts should be in the ballpark of the paper's F counts.
	for i, p := range plots {
		if p.Failures < 50 {
			t.Errorf("vintage %d: %d failures", i+1, p.Failures)
		}
	}
}

func TestFleetSweep(t *testing.T) {
	rows, err := FleetSweep(Options{Iterations: 1280, Seed: 13, CurvePoints: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	byFleet := map[int][]FleetRow{}
	for _, r := range rows {
		byFleet[r.Groups] = append(byFleet[r.Groups], r)
	}
	for groups, cells := range byFleet {
		// Cells are ordered slots 1, 2, 4, unlimited: queueing must fall
		// weakly as repair bandwidth grows, hit exactly zero without a cap,
		// and actually bite at a single slot (or the sweep tests nothing).
		for i := 1; i < len(cells); i++ {
			if cells[i].WaitFrac > cells[i-1].WaitFrac {
				t.Errorf("fleet %d: wait fraction rose from %v to %v as slots grew",
					groups, cells[i-1].WaitFrac, cells[i].WaitFrac)
			}
		}
		last := cells[len(cells)-1]
		if last.Slots != 0 || last.WaitFrac != 0 || last.MeanWaitH != 0 {
			t.Errorf("fleet %d: unlimited-slot baseline accrued waits: %+v", groups, last)
		}
		if cells[0].WaitFrac == 0 {
			t.Errorf("fleet %d: single repair slot never queued; sweep is vacuous", groups)
		}
		for _, c := range cells {
			if c.DDFs <= 0 {
				t.Errorf("fleet %d slots %d: no DDFs at base-case rates", groups, c.Slots)
			}
		}
	}
	// The bigger fleet on the same single crew must queue more.
	if byFleet[64][0].WaitFrac <= byFleet[16][0].WaitFrac {
		t.Errorf("64-group fleet queues %v, not above 16-group fleet's %v",
			byFleet[64][0].WaitFrac, byFleet[16][0].WaitFrac)
	}
	if _, err := FleetSweep(Options{Iterations: 100, Seed: 1, CurvePoints: 4, BiasOp: 8}); err == nil {
		t.Error("importance-sampled fleet sweep accepted")
	}
}
