package experiments

import (
	"fmt"

	"raidrel/internal/core"
	"raidrel/internal/sim"
)

// FleetRow is one cell of the repair-bandwidth sweep: a fleet size and a
// concurrent-rebuild cap, with the resulting data-loss rate and heal
// backlog.
type FleetRow struct {
	// Groups is the fleet size (RAID groups per chronology); Slots is the
	// fleet-wide concurrent-rebuild cap, 0 meaning unlimited.
	Groups int
	Slots  int
	// DDFs is double disk failures per 1,000 groups over the mission.
	DDFs float64
	// WaitFrac is the fraction of rebuilds that queued for a repair slot.
	WaitFrac float64
	// MeanWaitH and MaxWaitH are the mean and worst failure-to-rebuild-start
	// waits in hours (over the rebuilds that waited).
	MeanWaitH float64
	MaxWaitH  float64
	// MaxExposureH is the longest any group ran degraded — failure to last
	// concurrent restore — across the campaign, in hours.
	MaxExposureH float64
}

// fleetRepairMTTRHours stretches the base-case restore to a
// bandwidth-limited rebuild: raidsim-class drives rebuilt over the fleet
// network take days, not the hot-spare copyback hours of the paper's
// single-group model, which is what makes the repair crews contend.
const fleetRepairMTTRHours = 96

// FleetSweep answers the operations question the independent-group model
// cannot ask: how many concurrent rebuilds must a fleet sustain before
// repair queueing starts adding data-loss risk? Each cell couples Groups
// base-case RAID groups into one fleet on a bounded repair server
// (degradation-priority grants) and reports the DDF rate next to the heal
// backlog; the unlimited-slot column is the independent-group baseline by
// the engine's equivalence property.
func FleetSweep(opt Options) ([]FleetRow, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.BiasOp != 0 && opt.BiasOp != 1 {
		return nil, fmt.Errorf("experiments: fleet sweep cannot run importance-sampled (the fleet engine is unbiased only)")
	}
	base := core.BaseCase()
	base.TTR = core.WeibullSpec{Scale: fleetRepairMTTRHours, Shape: 1}

	fleets := []int{16, 64}
	slots := []int{1, 2, 4, 0}
	out := make([]FleetRow, 0, len(fleets)*len(slots))
	for _, groups := range fleets {
		for _, k := range slots {
			p := base
			p.Fleet = &sim.FleetOptions{Groups: groups, MaxConcurrentRebuilds: k}
			m, err := core.New(p)
			if err != nil {
				return nil, fmt.Errorf("experiments: fleet %dx%d: %w", groups, k, err)
			}
			res, err := m.Run(opt.Iterations, opt.Seed)
			if err != nil {
				return nil, fmt.Errorf("experiments: fleet %dx%d: %w", groups, k, err)
			}
			f := res.Fleet()
			row := FleetRow{
				Groups:       groups,
				Slots:        k,
				DDFs:         res.DDFsPer1000GroupsAt(p.MissionHours),
				MaxWaitH:     f.MaxWaitHours,
				MaxExposureH: f.MaxExposureHours,
			}
			if f.Rebuilds > 0 {
				row.WaitFrac = float64(f.Waited) / float64(f.Rebuilds)
			}
			if f.Waited > 0 {
				row.MeanWaitH = f.TotalWaitHours / float64(f.Waited)
			}
			out = append(out, row)
		}
	}
	return out, nil
}
