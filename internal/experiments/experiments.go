// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) from the raidrel model. Each function returns structured
// data; cmd/experiments renders it and bench_test.go at the module root
// wraps each one in a benchmark.
package experiments

import (
	"fmt"

	"raidrel/internal/analytic"
	"raidrel/internal/core"
	"raidrel/internal/stats"
)

// Options control the Monte Carlo scale of every experiment.
type Options struct {
	// Iterations is the number of simulated RAID groups per configuration
	// (the paper uses 1,000-10,000).
	Iterations int
	// Seed makes every experiment reproducible.
	Seed uint64
	// CurvePoints is the grid resolution of cumulative curves.
	CurvePoints int
	// BiasOp, when not 0 or 1, enables failure-biased importance sampling
	// at that operational-hazard scale factor: every configuration is
	// simulated under the tilted measure and all curves and totals are
	// likelihood-ratio weighted, resolving rare-event cells with far fewer
	// iterations.
	BiasOp float64
}

// Default returns paper-scale options: 10,000 groups per configuration.
func Default() Options {
	return Options{Iterations: 10000, Seed: 20070625, CurvePoints: 21}
}

// Reduced returns cheap options for tests and benchmarks.
func Reduced() Options {
	return Options{Iterations: 500, Seed: 20070625, CurvePoints: 11}
}

func (o Options) validate() error {
	if o.Iterations < 1 {
		return fmt.Errorf("experiments: iterations must be >= 1, got %d", o.Iterations)
	}
	if o.CurvePoints < 2 {
		return fmt.Errorf("experiments: curve needs >= 2 points, got %d", o.CurvePoints)
	}
	return nil
}

// Series is one labelled curve: DDFs per 1,000 RAID groups versus hours.
type Series struct {
	Name   string
	Times  []float64
	Values []float64
}

// Final returns the last value of the series.
func (s Series) Final() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// runSeries simulates params and samples its cumulative DDF curve.
func runSeries(name string, p core.Params, opt Options) (Series, *core.Result, error) {
	p.Bias.Op = opt.BiasOp
	m, err := core.New(p)
	if err != nil {
		return Series{}, nil, fmt.Errorf("experiments: %s: %w", name, err)
	}
	res, err := m.Run(opt.Iterations, opt.Seed)
	if err != nil {
		return Series{}, nil, fmt.Errorf("experiments: %s: %w", name, err)
	}
	times, values := res.Curve(opt.CurvePoints)
	return Series{Name: name, Times: times, Values: values}, res, nil
}

// mttdlSeries is the straight "rate × time" line of equation 3 on the same
// grid, using the raw MTBF/MTTR the paper feeds equation 1.
func mttdlSeries(p core.Params, opt Options) (Series, error) {
	in := analytic.MTTDLInput{
		N:    p.GroupSize - 1,
		MTBF: p.TTOp.Scale,
		MTTR: p.TTR.Scale,
	}
	times := make([]float64, opt.CurvePoints)
	values := make([]float64, opt.CurvePoints)
	for i := range times {
		times[i] = p.MissionHours * float64(i) / float64(opt.CurvePoints-1)
		v, err := analytic.ExpectedDDFs(in, times[i], 1000)
		if err != nil {
			return Series{}, err
		}
		values[i] = v
	}
	return Series{Name: "MTTDL", Times: times, Values: values}, nil
}

// Figure6 reproduces Fig. 6: the model against the MTTDL line with no
// latent defects, in the four rate-assumption variants — c-c (constant
// failure and restoration rates), f(t)-c, c-r(t), and f(t)-r(t).
func Figure6(opt Options) ([]Series, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	base := core.BaseCase().WithoutLatentDefects()
	variants := []struct {
		name    string
		expOp   bool
		expRest bool
	}{
		{"c-c", true, true},
		{"f(t)-c", false, true},
		{"c-r(t)", true, false},
		{"f(t)-r(t)", false, false},
	}
	out := make([]Series, 0, len(variants)+1)
	line, err := mttdlSeries(base, opt)
	if err != nil {
		return nil, err
	}
	out = append(out, line)
	for _, v := range variants {
		p := base
		p.ExponentialOp = v.expOp
		p.ExponentialRestore = v.expRest
		s, _, err := runSeries(v.name, p, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Figure7 reproduces Fig. 7: the base case with latent defects, with a
// 168-hour scrub versus no scrubbing.
func Figure7(opt Options) ([]Series, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	var out []Series
	for _, cfg := range []struct {
		name  string
		hours float64
	}{
		{"no scrub", 0},
		{"168 h scrub", 168},
	} {
		s, _, err := runSeries(cfg.name, core.BaseCase().WithScrubPeriod(cfg.hours), opt)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// ROCOFSeries is a labelled set of fixed-window DDF counts (Fig. 8),
// together with the Crow-AMSAA power-law fit that quantifies the trend:
// growth exponent β > 1 (and a significantly positive z) is the paper's
// "increasing ROCOF" claim in parametric form.
type ROCOFSeries struct {
	Name       string
	Points     []stats.ROCOFPoint
	Increasing bool
	PowerLaw   stats.PowerLawFit
	GrowthZ    float64
}

// Figure8 reproduces Fig. 8: the rate of occurrence of failures for the
// Fig. 7 cases, computed over fixed windows. The paper's point is that the
// ROCOF rises over the mission — the opposite of the HPP assumption.
func Figure8(opt Options) ([]ROCOFSeries, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	window := core.BaseMissionHours / 10.0
	var out []ROCOFSeries
	for _, cfg := range []struct {
		name  string
		hours float64
	}{
		{"no scrub", 0},
		{"168 h scrub", 168},
	} {
		p := core.BaseCase().WithScrubPeriod(cfg.hours)
		p.Bias.Op = opt.BiasOp
		m, err := core.New(p)
		if err != nil {
			return nil, err
		}
		res, err := m.Run(opt.Iterations, opt.Seed)
		if err != nil {
			return nil, err
		}
		points, err := res.ROCOF(window)
		if err != nil {
			return nil, err
		}
		series := ROCOFSeries{
			Name:       cfg.name,
			Points:     points,
			Increasing: stats.IsIncreasingTrend(points),
		}
		if fit, err := stats.FitPowerLawTimes(res.Raw.Times(), res.Groups, core.BaseMissionHours); err == nil {
			series.PowerLaw = fit
			series.GrowthZ = stats.GrowthTestZ(fit)
		}
		out = append(out, series)
	}
	return out, nil
}

// Figure9 reproduces Fig. 9: scrub-duration sweep (336/168/48/12 hours).
func Figure9(opt Options) ([]Series, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	var out []Series
	for _, hours := range []float64{336, 168, 48, 12} {
		s, _, err := runSeries(fmt.Sprintf("%.0f h scrub", hours),
			core.BaseCase().WithScrubPeriod(hours), opt)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Figure10 reproduces Fig. 10: the TTOp shape-parameter sweep at fixed
// characteristic life (β ∈ {0.8, 1, 1.12, 1.4, 1.5}).
func Figure10(opt Options) ([]Series, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	var out []Series
	for _, beta := range []float64{0.8, 1.0, 1.12, 1.4, 1.5} {
		s, _, err := runSeries(fmt.Sprintf("β = %.2f", beta),
			core.BaseCase().WithOpShape(beta), opt)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Table3Row is one row of Table 3: first-year DDFs per 1,000 groups and
// the ratio against the MTTDL estimate.
type Table3Row struct {
	Assumptions string
	FirstYear   float64
	Ratio       float64
}

// Table3 reproduces Table 3: the MTTDL row, the base case without
// scrubbing, and the 336/168/48/12-hour scrub rows, all at one year.
func Table3(opt Options) ([]Table3Row, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	in := analytic.MTTDLInput{N: 7, MTBF: core.BaseMTBFHours, MTTR: 12}
	mttdlYear, err := analytic.ExpectedDDFs(in, analytic.HoursPerYear, 1000)
	if err != nil {
		return nil, err
	}
	rows := []Table3Row{{Assumptions: "MTTDL", FirstYear: mttdlYear, Ratio: 1}}
	cases := []struct {
		name  string
		hours float64
	}{
		{"base case w/o scrub", 0},
		{"336 h scrub", 336},
		{"168 h scrub", 168},
		{"48 h scrub", 48},
		{"12 h scrub", 12},
	}
	for _, c := range cases {
		p := core.BaseCase().WithScrubPeriod(c.hours)
		// Table 3 is a first-year quantity; simulating one year keeps the
		// paper-scale run cheap without changing the counted window.
		p.MissionHours = analytic.HoursPerYear
		p.Bias.Op = opt.BiasOp
		m, err := core.New(p)
		if err != nil {
			return nil, err
		}
		res, err := m.Run(opt.Iterations, opt.Seed)
		if err != nil {
			return nil, err
		}
		fy := res.FirstYearDDFsPer1000()
		rows = append(rows, Table3Row{
			Assumptions: c.name,
			FirstYear:   fy,
			Ratio:       fy / mttdlYear,
		})
	}
	return rows, nil
}
