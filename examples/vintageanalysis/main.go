// Vintage analysis: the full field-data-to-fleet-risk pipeline. Three
// drive vintages are observed in the field (synthetic populations with the
// paper's Fig. 2 parameters), their lifetime distributions are re-fitted
// from the censored returns by maximum likelihood, and the fitted
// parameters drive the reliability model to rank vintages by double-disk-
// failure risk — exactly how the paper intends RAID architects to use it.
//
//	go run ./examples/vintageanalysis
package main

import (
	"fmt"
	"log"
	"os"

	"raidrel/internal/core"
	"raidrel/internal/field"
	"raidrel/internal/fit"
	"raidrel/internal/report"
	"raidrel/internal/rng"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const fieldWindow = 10000 // hours of field exposure observed
	r := rng.New(2026)
	table := report.NewTable("vintage", "failures", "suspensions",
		"fitted β", "fitted η (h)", "5-year DDFs/1000 groups")

	type fitted struct {
		name string
		p    fit.Params
	}
	var fits []fitted
	for _, v := range field.PaperVintages() {
		obs, err := v.Population(fieldWindow).Observe(r)
		if err != nil {
			return err
		}
		params, err := fit.MLE(obs)
		if err != nil {
			return fmt.Errorf("fit %s: %w", v.Name, err)
		}
		failures := 0
		for _, o := range obs {
			if !o.Censored {
				failures++
			}
		}
		fits = append(fits, fitted{name: v.Name, p: params})

		// Feed the fitted distribution into the reliability model.
		mp := core.BaseCase()
		mp.MissionHours = 5 * 8760
		mp.TTOp = core.WeibullSpec{Scale: params.Scale, Shape: params.Shape}
		model, err := core.New(mp)
		if err != nil {
			return err
		}
		res, err := model.Run(1500, 11)
		if err != nil {
			return err
		}
		table.AddRow(v.Name,
			fmt.Sprintf("%d", failures),
			fmt.Sprintf("%d", len(obs)-failures),
			fmt.Sprintf("%.3f", params.Shape),
			fmt.Sprintf("%.3g", params.Scale),
			fmt.Sprintf("%.1f", res.DDFsPer1000GroupsAt(mp.MissionHours)),
		)
	}
	fmt.Println("Field returns -> censored MLE -> fleet DDF risk (8-drive RAID5, 168 h scrub)")
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nNote how vintages of the *same* drive model carry different β and η —")
	fmt.Println("the paper's Fig. 2 — and how that propagates to materially different")
	fmt.Println("fleet risk. A single constant MTBF cannot express this.")
	_ = fits
	return nil
}
