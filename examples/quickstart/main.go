// Quickstart: simulate the paper's base-case RAID group and compare the
// predicted double-disk failures with the classical MTTDL estimate.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"raidrel"
)

func main() {
	// The paper's Table 2 base case: 8 drives, 10-year mission, field-fit
	// Weibull failure/restore distributions, latent defects at the medium
	// read-error rate, 168-hour scrubbing.
	params := raidrel.BaseCase()
	model, err := raidrel.New(params)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate 2,000 independent RAID groups (increase for tighter
	// estimates; the paper uses up to 10,000).
	result, err := model.Run(2000, 42)
	if err != nil {
		log.Fatal(err)
	}

	simulated := result.DDFsPer1000GroupsAt(params.MissionHours)
	mttdl, err := raidrel.ExpectedDDFs(raidrel.MTTDLInput{
		N:    params.GroupSize - 1,
		MTBF: params.TTOp.Scale,
		MTTR: params.TTR.Scale,
	}, params.MissionHours, 1000)
	if err != nil {
		log.Fatal(err)
	}

	opop, ldop := result.CauseBreakdown()
	fmt.Printf("10-year mission, %d-drive group, 168 h scrub\n", params.GroupSize)
	fmt.Printf("  enhanced model: %7.2f DDFs per 1,000 groups\n", simulated)
	fmt.Printf("    op+op: %.2f   latent+op: %.2f\n", opop, ldop)
	fmt.Printf("  MTTDL method:   %7.2f DDFs per 1,000 groups\n", mttdl)
	fmt.Printf("  ratio:          %7.0fx\n", simulated/mttdl)
	fmt.Println()
	fmt.Println("The gap is the paper's point: constant-rate models that ignore")
	fmt.Println("latent defects understate double-disk failures by orders of magnitude.")
}
