// RAID6 demo: the paper's closing claim — "eventually, RAID 6 will be
// required" — demonstrated at two levels.
//
// Level 1 (physical): an in-memory 8-disk array with real parity. A
// latent sector defect is injected on one drive, a different drive fails,
// and the rebuild runs: single parity loses the affected stripe, while
// row-diagonal parity (Corbett et al., the paper's ref. [24]) recovers it.
//
// Level 2 (statistical): the reliability model run with redundancy 1
// versus 2 under identical failure, defect, and scrub distributions.
//
//	go run ./examples/raid6demo
package main

import (
	"fmt"
	"log"

	"raidrel/internal/core"
	"raidrel/internal/raid"
	"raidrel/internal/rng"
)

func main() {
	if err := physical(); err != nil {
		log.Fatal(err)
	}
	if err := statistical(); err != nil {
		log.Fatal(err)
	}
}

func physical() error {
	fmt.Println("== physical level: one latent defect + one drive loss ==")
	for _, level := range []raid.Level{raid.RAID5, raid.RAID6} {
		a, err := raid.New(level, 8, 64, 512)
		if err != nil {
			return err
		}
		r := rng.New(1)
		for set := 0; set < a.StripeSets(); set++ {
			data := make([][]byte, a.DataBlocksPerSet())
			for i := range data {
				blk := make([]byte, 512)
				for j := range blk {
					blk[j] = byte(r.Intn(256))
				}
				data[i] = blk
			}
			if err := a.WriteStripe(set, data); err != nil {
				return err
			}
		}
		// A latent defect lands on disk 2, stripe set 17 — silent: the
		// checksum still claims the old data.
		if err := a.CorruptBlock(2, 17, 0); err != nil {
			return err
		}
		// Then disk 5 dies and is replaced.
		if err := a.FailDisk(5); err != nil {
			return err
		}
		rep, err := a.ReplaceDisk(5)
		if err != nil {
			return err
		}
		if len(rep.LostSets) == 0 {
			fmt.Printf("  %-9s rebuild recovered all %d stripe sets\n", level, a.StripeSets())
		} else {
			fmt.Printf("  %-9s rebuild LOST stripe sets %v (the latent defect met the dead disk)\n",
				level, rep.LostSets)
		}
	}
	fmt.Println()
	return nil
}

func statistical() error {
	fmt.Println("== statistical level: 10-year DDF risk, identical drives ==")
	base := core.BaseCase().WithScrubPeriod(168)
	for _, redundancy := range []int{1, 2} {
		p := base
		p.Redundancy = redundancy
		model, err := core.New(p)
		if err != nil {
			return err
		}
		res, err := model.Run(3000, 5)
		if err != nil {
			return err
		}
		fmt.Printf("  redundancy %d (RAID %d): %8.2f data-loss events per 1,000 groups\n",
			redundancy, 4+redundancy, res.DDFsPer1000GroupsAt(p.MissionHours))
	}
	fmt.Println("\nDouble parity turns the dominant latent+operational coincidence from")
	fmt.Println("a data-loss event into a recoverable one; only rarer triple")
	fmt.Println("coincidences remain.")
	return nil
}
