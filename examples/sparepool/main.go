// Spare-pool provisioning: how many spares should a shelf of four RAID
// groups keep on hand, given a slow replacement supply chain? The fleet
// simulator couples the groups through one shared pool, so a failure
// burst in one group can starve another group's rebuild — exactly the
// question the paper's single-group model (which assumes "a spare HDD is
// available") cannot answer.
//
//	go run ./examples/sparepool
package main

import (
	"fmt"
	"log"
	"os"

	"raidrel/internal/dist"
	"raidrel/internal/report"
	"raidrel/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	group := sim.Config{
		Drives:     8,
		Redundancy: 1,
		Mission:    5 * 8760,
		Trans: sim.Transitions{
			// A stressed population: MTBF 50,000 h with wear-out.
			TTOp:    dist.MustWeibull(1.4, 50000, 0),
			TTR:     dist.MustWeibull(2, 12, 6),
			TTLd:    dist.MustExponential(1.08e-4),
			TTScrub: dist.MustWeibull(3, 168, 6),
		},
	}
	const (
		groups    = 4
		iters     = 800
		replenish = 336 // two weeks to receive a replacement drive
	)
	table := report.NewTable("spares on shelf", "DDFs per shelf (5 y)", "vs unlimited")
	var unlimited float64
	for _, initial := range []int{-1, 0, 1, 2, 4, 8} {
		var pool *sim.SparePolicy
		label := "unlimited"
		if initial >= 0 {
			pool = &sim.SparePolicy{Initial: initial, ReplenishHours: replenish}
			label = fmt.Sprintf("%d", initial)
		}
		total := 0
		for i := 0; i < iters; i++ {
			res, _, err := sim.SimulateFleet(sim.FleetConfig{
				Groups:       groups,
				Group:        group,
				SharedSpares: pool,
			}, 77, uint64(i*groups))
			if err != nil {
				return err
			}
			for _, gr := range res {
				total += len(gr.DDFs)
			}
		}
		perShelf := float64(total) / iters
		if pool == nil {
			unlimited = perShelf
		}
		ratio := "1.00x"
		if unlimited > 0 {
			ratio = fmt.Sprintf("%.2fx", perShelf/unlimited)
		}
		table.AddRow(label, fmt.Sprintf("%.3f", perShelf), ratio)
	}
	fmt.Printf("Shelf of %d RAID groups, %d-hour replacement lead time\n", groups, replenish)
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nTwo lessons. First, one or two stocked spares recover nearly all of")
	fmt.Println("the unlimited-supply reliability. Second — and less intuitive — even")
	fmt.Println("ZERO spares only costs ~25%: two-week rebuild waits stretch the")
	fmt.Println("op+op exposure window, but the dominant latent+op coincidences are")
	fmt.Println("decided at the instant of the failure, before the rebuild even")
	fmt.Println("starts. Scrubbing policy moves this fleet's risk far more than spare")
	fmt.Println("logistics do (compare examples/scrubtuning).")
	return nil
}
