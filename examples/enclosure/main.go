// Enclosure design: the drives of a RAID group do not fail in isolation —
// they sit behind shared enclosures and SAS expanders, and when one of
// those dies, every drive behind it drops out at once. The data is intact
// (the episode ends when the part is swapped), but rebuilds pause and an
// N+1 group is suddenly N+1 drives it cannot read. The flat model of the
// paper puts this risk at exactly zero; the topology layer measures it.
//
// This example builds a two-level component tree — one enclosure feeding
// two expanders, each carrying half the drives — and compares it against
// the same tree with dual-pathed expanders, separating what changed
// (availability) from what barely moves (data loss).
//
//	go run ./examples/enclosure
package main

import (
	"fmt"
	"log"
	"os"

	"raidrel/internal/core"
	"raidrel/internal/report"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Expander-class electronics: long-lived, but a failure means an
	// ordered part and a service visit, not a hot-spare pull.
	expTTOp := core.WeibullSpec{Scale: 150000, Shape: 1}
	expTTR := core.WeibullSpec{Scale: 72, Shape: 1}
	// The enclosure itself (backplane, power): rarer still, slower to fix.
	encTTOp := core.WeibullSpec{Scale: 400000, Shape: 1}
	encTTR := core.WeibullSpec{Scale: 168, Shape: 1}

	tree := func(paths int) *core.TopologySpec {
		return &core.TopologySpec{Components: []core.ComponentSpec{
			// The enclosure has no directly-attached drives; its effective
			// cover is everything behind its children.
			{Name: "enclosure", TTOp: encTTOp, TTR: encTTR},
			{Name: "expander-a", Parent: "enclosure", Drives: []int{0, 1, 2, 3},
				Paths: paths, TTOp: expTTOp, TTR: expTTR},
			{Name: "expander-b", Parent: "enclosure", Drives: []int{4, 5, 6, 7},
				Paths: paths, TTOp: expTTOp, TTR: expTTR},
		}}
	}

	designs := []struct {
		name string
		topo *core.TopologySpec
		hint string
	}{
		{"flat (no shared hardware)", nil, "the paper's model"},
		{"single-pathed expanders", tree(1), "each expander a single point of access"},
		{"dual-pathed expanders", tree(2), "same tree, paired expander silicon"},
	}

	const iters = 4000
	t := report.NewTable("design", "DDFs/1000 groups", "unavail onsets/1000", "p(episode)", "note")
	for _, d := range designs {
		p := core.BaseCase()
		p.Topology = d.topo
		m, err := core.New(p)
		if err != nil {
			return err
		}
		res, err := m.Run(iters, 2026)
		if err != nil {
			return err
		}
		t.AddRow(d.name,
			fmt.Sprintf("%.1f", res.DDFsPer1000GroupsAt(p.MissionHours)),
			fmt.Sprintf("%.1f", res.UnavailPer1000Groups()),
			fmt.Sprintf("%.3f", res.GroupUnavailProbability()),
			d.hint)
	}
	fmt.Println("8-drive RAID 5 group, 10-year mission, shared-hardware variants")
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nData loss barely moves across the rows: drives dominate it, and a")
	fmt.Println("component outage only stretches the exposure window while it lasts.")
	fmt.Println("Availability is the real casualty — with single-pathed expanders a")
	fmt.Println("large fraction of groups see at least one multi-drive access-loss")
	fmt.Println("episode per mission, and dual-pathing buys that back for the cost")
	fmt.Println("of paired silicon. MTTDL-style drive-only models cannot rank these")
	fmt.Println("designs at all: every row looks identical to them.")
	return nil
}
