// Scrub tuning: an operator sizing the scrub period for a 14-drive SATA
// shelf under three workload profiles. The example derives the latent-
// defect rate from the workload's read volume (Table 1 arithmetic), the
// rebuild floor from drive geometry (§6.2), sweeps scrub periods, and
// prints the resulting 5-year DDF risk for each combination.
//
//	go run ./examples/scrubtuning
package main

import (
	"fmt"
	"log"
	"os"

	"raidrel/internal/core"
	"raidrel/internal/hdd"
	"raidrel/internal/report"
	"raidrel/internal/scrub"
	"raidrel/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		groupSize  = 14
		mission    = 5 * 8760 // 5 years
		iterations = 1500
	)
	drive := hdd.SATA500GB
	profiles := []workload.Profile{workload.Archive, workload.Nearline, workload.Transactional}
	periods := []float64{0, 336, 168, 48, 12}

	table := report.NewTable("workload", "defect rate (/h)", "rebuild floor (h)",
		"scrub (h)", "DDFs/1000 groups in 5 y")
	for _, prof := range profiles {
		rate, err := workload.DefectRate(workload.RERMedium, prof.BytesPerHour)
		if err != nil {
			return err
		}
		restore, err := drive.RestoreSpec(groupSize, prof.ForegroundShare, 2)
		if err != nil {
			return err
		}
		for _, period := range periods {
			p := core.Params{
				GroupSize:    groupSize,
				Redundancy:   1,
				MissionHours: mission,
				TTOp:         core.WeibullSpec{Scale: core.BaseMTBFHours, Shape: 1.12},
				TTR: core.WeibullSpec{
					Location: restore.Location(),
					Scale:    restore.Scale(),
					Shape:    restore.Shape(),
				},
				LatentDefects: true,
				TTLd:          core.WeibullSpec{Scale: 1 / rate, Shape: 1},
			}
			policy := scrub.Policy{PeriodHours: period, Drive: &drive, ForegroundShare: prof.ForegroundShare}
			p, err := policy.Apply(p)
			if err != nil {
				return err
			}
			model, err := core.New(p)
			if err != nil {
				return err
			}
			res, err := model.Run(iterations, 7)
			if err != nil {
				return err
			}
			label := fmt.Sprintf("%.0f", period)
			if period == 0 {
				label = "none"
			}
			table.AddRow(prof.Name,
				fmt.Sprintf("%.2e", rate),
				fmt.Sprintf("%.1f", restore.Location()),
				label,
				fmt.Sprintf("%.1f", res.DDFsPer1000GroupsAt(mission)),
			)
		}
	}
	fmt.Println("Scrub-period sweep, 14x SATA-500GB, RAID5, medium read-error rate")
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nReading the table: heavier workloads corrupt data faster AND slow")
	fmt.Println("rebuilds, so they need much shorter scrub periods to hold the same")
	fmt.Println("risk. 'none' rows show why unscrubbed systems are, in the paper's")
	fmt.Println("words, a recipe for disaster.")
	return nil
}
