// Benchmarks that regenerate every table and figure of the paper (one
// benchmark per exhibit) plus the ablations called out in DESIGN.md. Each
// benchmark reports the exhibit's headline quantity as a custom metric so
// `go test -bench=. -benchmem` doubles as a miniature reproduction run;
// cmd/experiments produces the full paper-scale versions.
package raidrel_test

import (
	"context"
	"math"
	"testing"

	"raidrel/internal/campaign"
	"raidrel/internal/core"
	"raidrel/internal/dist"
	"raidrel/internal/experiments"
	"raidrel/internal/markov"
	"raidrel/internal/raid"
	"raidrel/internal/rng"
	"raidrel/internal/sim"
	"raidrel/internal/workload"
)

// benchOpt is the per-op Monte Carlo scale used by the figure benchmarks.
var benchOpt = experiments.Options{Iterations: 400, Seed: 20070625, CurvePoints: 6}

func BenchmarkTable1ReadErrorRates(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, cell := range workload.Table1() {
			sink += cell.ErrorsPerHour
		}
	}
	b.ReportMetric(sink/float64(b.N), "sum_err_per_hour")
}

func BenchmarkTable3DDFRatios(b *testing.B) {
	var last []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	b.ReportMetric(last[1].Ratio, "noscrub_ratio")
	b.ReportMetric(last[3].Ratio, "scrub168_ratio")
}

func BenchmarkFigure1FieldPlots(b *testing.B) {
	var plots []experiments.FieldPlot
	for i := 0; i < b.N; i++ {
		var err error
		plots, err = experiments.Figure1(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(plots[0].MRR.R2, "hdd1_r2")
}

func BenchmarkFigure2Vintages(b *testing.B) {
	var plots []experiments.FieldPlot
	for i := 0; i < b.N; i++ {
		var err error
		plots, err = experiments.Figure2(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(plots[2].MLE.Shape, "vintage3_beta")
}

func BenchmarkFigure6ModelVsMTTDL(b *testing.B) {
	// Fig. 6 counts extremely rare defect-free DDFs; give it more groups.
	opt := benchOpt
	opt.Iterations = 20000
	var series []experiments.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiments.Figure6(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(series[0].Final(), "mttdl_final")
	b.ReportMetric(series[1].Final(), "cc_final")
}

func BenchmarkFigure7LatentDefects(b *testing.B) {
	var series []experiments.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiments.Figure7(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(series[0].Final(), "noscrub_ddfs_per_1000")
	b.ReportMetric(series[1].Final(), "scrub168_ddfs_per_1000")
}

func BenchmarkFigure8ROCOF(b *testing.B) {
	var series []experiments.ROCOFSeries
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiments.Figure8(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := series[0].Points
	b.ReportMetric(last[len(last)-1].Count, "noscrub_last_window")
}

func BenchmarkFigure9ScrubSweep(b *testing.B) {
	var series []experiments.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiments.Figure9(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(series[0].Final(), "scrub336_final")
	b.ReportMetric(series[len(series)-1].Final(), "scrub12_final")
}

func BenchmarkFigure10ShapeSweep(b *testing.B) {
	var series []experiments.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiments.Figure10(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(series[0].Final(), "beta08_final")
	b.ReportMetric(series[len(series)-1].Final(), "beta15_final")
}

// --- ablations (DESIGN.md §6) ---

func baseSimConfig() sim.Config {
	return sim.Config{
		Drives:     8,
		Redundancy: 1,
		Mission:    core.BaseMissionHours,
		Trans: sim.Transitions{
			TTOp:    dist.MustWeibull(1.12, core.BaseMTBFHours, 0),
			TTR:     dist.MustWeibull(2, 12, 6),
			TTLd:    dist.MustWeibull(1, core.BaseTTLdScaleHours, 0),
			TTScrub: dist.MustWeibull(3, 168, 6),
		},
	}
}

// BenchmarkEngineTimeline measures the event-queue engine per group
// chronology.
func BenchmarkEngineTimeline(b *testing.B) {
	cfg := baseSimConfig()
	engine := sim.EventEngine{}
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Simulate(cfg, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTimelineInto measures the zero-allocation hot path the
// Monte Carlo workers actually run: one reseeded RNG and one reused DDF
// buffer per worker, stream i driving iteration i.
func BenchmarkEngineTimelineInto(b *testing.B) {
	cfg := baseSimConfig()
	engine := sim.EventEngine{}
	var (
		r   rng.RNG
		buf []sim.DDF
		err error
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.SeedStream(1, uint64(i))
		if buf, _, err = engine.SimulateInto(cfg, &r, buf[:0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTimelineFlatTopoInto pins the price of the topology
// layer's flat fast path: an explicitly flat (component-free) topology
// must compile down to the plain per-drive event engine, costing one nil
// scratch check per availability-relevant event. Gate-compared against
// BenchmarkEngineTimelineInto's median — the two must stay within noise
// of each other.
func BenchmarkEngineTimelineFlatTopoInto(b *testing.B) {
	cfg := baseSimConfig()
	cfg.Topology = &sim.Topology{}
	engine := sim.EventEngine{}
	var (
		r   rng.RNG
		buf []sim.DDF
		err error
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.SeedStream(1, uint64(i))
		if buf, _, err = engine.SimulateInto(cfg, &r, buf[:0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSequential measures the Fig. 5 interval engine on the
// same configuration.
func BenchmarkEngineSequential(b *testing.B) {
	cfg := baseSimConfig()
	engine := sim.IntervalEngine{}
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Simulate(cfg, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSequentialInto measures the interval engine's scratch-
// reusing append path.
func BenchmarkEngineSequentialInto(b *testing.B) {
	cfg := baseSimConfig()
	engine := sim.IntervalEngine{}
	var (
		r   rng.RNG
		buf []sim.DDF
		err error
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.SeedStream(1, uint64(i))
		if buf, _, err = engine.SimulateInto(cfg, &r, buf[:0]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRunBlock drives the batched block path the way the runner does in
// production — one worker, whole blocks per scratch acquisition — so ns/op
// is the amortized per-iteration cost the Monte Carlo campaign actually
// pays (BlockEngine.SimulateInto alone would re-prep the kernels per call).
func benchRunBlock(b *testing.B, cfg sim.Config) {
	b.ReportAllocs()
	res := &sim.SparseResult{}
	if err := sim.RunCollect(sim.RunSpec{
		Config:     cfg,
		Iterations: b.N,
		Seed:       1,
		Workers:    1,
		Engine:     sim.BlockEngine{},
	}, res); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.TotalDDFs), "ddfs")
}

// BenchmarkEngineBlockInto measures the batched structure-of-arrays engine
// on the base case — the tentpole comparison against
// BenchmarkEngineSequentialInto's scalar interval chronology.
func BenchmarkEngineBlockInto(b *testing.B) {
	benchRunBlock(b, baseSimConfig())
}

// BenchmarkEngineBlockBiasedInto measures the block engine under the θ = 8
// importance-sampling tilt, against BenchmarkEngineSequentialBiasedInto.
func BenchmarkEngineBlockBiasedInto(b *testing.B) {
	cfg := baseSimConfig()
	cfg.Bias.Op = 8
	benchRunBlock(b, cfg)
}

// BenchmarkEngineBlockVRInto measures the block engine with the full
// variance-reduction stack armed (antithetic pairing, stratified first
// draw, control-variate tallies) — the per-iteration overhead the
// statistical speedup costs.
func BenchmarkEngineBlockVRInto(b *testing.B) {
	cfg := baseSimConfig()
	cfg.VR = sim.VR{Antithetic: true, Stratify: true, ControlVariate: true}
	benchRunBlock(b, cfg)
}

// BenchmarkFleetInto measures one warm fleet chronology — 10,000 coupled
// base-case groups contending for 64 fleet-wide repair slots — through the
// pooled zero-steady-state-allocation entry point, reporting per-group
// cost. The hard 0-alloc guard is TestFleetIntoZeroAlloc; here allocs/op
// records the amortized scratch growth across chronologies.
func BenchmarkFleetInto(b *testing.B) {
	fc := sim.FleetConfig{
		Groups:                10_000,
		Group:                 baseSimConfig(),
		MaxConcurrentRebuilds: 64,
	}
	var st sim.FleetStats
	visit := func(int, []sim.DDF) {}
	if err := sim.SimulateFleetInto(fc, 1, 0, visit, &st); err != nil {
		b.Fatal(err) // warm the pooled scratch to the fleet's size
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.SimulateFleetInto(fc, 1, uint64(i)*uint64(fc.Groups), visit, &st); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(st.Failures), "failures_per_chron")
}

// biasedSimConfig is the base case under the standard rare-event tilt:
// the operational-failure hazard scaled by θ = 8.
func biasedSimConfig() sim.Config {
	cfg := baseSimConfig()
	cfg.Bias.Op = 8
	return cfg
}

// BenchmarkEngineTimelineBiasedInto measures the event engine with
// importance sampling active: every TTOp draw goes through the fused
// tilted kernel (hazard-scaled draw + likelihood-ratio bookkeeping).
func BenchmarkEngineTimelineBiasedInto(b *testing.B) {
	cfg := biasedSimConfig()
	engine := sim.EventEngine{}
	var (
		r   rng.RNG
		buf []sim.DDF
		err error
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.SeedStream(1, uint64(i))
		if buf, _, err = engine.SimulateInto(cfg, &r, buf[:0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSequentialBiasedInto measures the interval engine under
// the same θ = 8 tilt.
func BenchmarkEngineSequentialBiasedInto(b *testing.B) {
	cfg := biasedSimConfig()
	engine := sim.IntervalEngine{}
	var (
		r   rng.RNG
		buf []sim.DDF
		err error
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.SeedStream(1, uint64(i))
		if buf, _, err = engine.SimulateInto(cfg, &r, buf[:0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunSparse measures the full streaming pipeline — workers,
// in-order merge, sparse accumulation — in iterations per second.
func BenchmarkRunSparse(b *testing.B) {
	cfg := baseSimConfig()
	const iters = 2000
	b.ReportAllocs()
	var total int
	for i := 0; i < b.N; i++ {
		res, err := sim.RunSparse(sim.RunSpec{Config: cfg, Iterations: iters, Seed: benchOpt.Seed})
		if err != nil {
			b.Fatal(err)
		}
		total = res.TotalDDFs
	}
	b.ReportMetric(float64(iters)*float64(b.N)/b.Elapsed().Seconds(), "iters/s")
	b.ReportMetric(float64(total), "ddfs")
}

// BenchmarkRAID6Extension measures the redundancy-2 model and reports its
// residual loss rate next to RAID 5's.
func BenchmarkRAID6Extension(b *testing.B) {
	var r5, r6 float64
	for i := 0; i < b.N; i++ {
		for _, redundancy := range []int{1, 2} {
			p := core.BaseCase()
			p.Redundancy = redundancy
			m, err := core.New(p)
			if err != nil {
				b.Fatal(err)
			}
			res, err := m.Run(benchOpt.Iterations, benchOpt.Seed)
			if err != nil {
				b.Fatal(err)
			}
			if redundancy == 1 {
				r5 = res.DDFsPer1000GroupsAt(p.MissionHours)
			} else {
				r6 = res.DDFsPer1000GroupsAt(p.MissionHours)
			}
		}
	}
	b.ReportMetric(r5, "raid5_losses_per_1000")
	b.ReportMetric(r6, "raid6_losses_per_1000")
}

// BenchmarkGroupSizeSweep measures the "best RAID group size" design
// query the paper's conclusion proposes, reporting the per-data-drive
// risk at the extremes.
func BenchmarkGroupSizeSweep(b *testing.B) {
	var rows []experiments.GroupSizeRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.GroupSizeSweep([]int{4, 8, 14}, benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].PerDataDrive, "n4_per_drive")
	b.ReportMetric(rows[len(rows)-1].PerDataDrive, "n14_per_drive")
}

// BenchmarkMixedVintages measures a group built half from the paper's
// best vintage and half from its worst, versus the homogeneous base case.
func BenchmarkMixedVintages(b *testing.B) {
	mixed := core.BaseCase().WithMixedVintages([]core.WeibullSpec{
		{Scale: 4.5444e5, Shape: 1.0987},
		{Scale: 7.5012e4, Shape: 1.4873},
	})
	m, err := core.New(mixed)
	if err != nil {
		b.Fatal(err)
	}
	var v float64
	for i := 0; i < b.N; i++ {
		res, err := m.Run(benchOpt.Iterations, benchOpt.Seed)
		if err != nil {
			b.Fatal(err)
		}
		v = res.DDFsPer1000GroupsAt(core.BaseMissionHours)
	}
	b.ReportMetric(v, "mixed_ddfs_per_1000")
}

// BenchmarkBathtubTTOp swaps the base TTOp for a bathtub lifetime (infant
// mortality competing with wear-out) — the hazard structure the paper's
// Fig. 1 populations actually exhibit — and reports the DDF shift.
func BenchmarkBathtubTTOp(b *testing.B) {
	bathtub := dist.MustCompetingRisks([]dist.Distribution{
		dist.MustWeibull(0.6, 3e6, 0), // infant mortality burning off
		dist.MustWeibull(3.0, 2e5, 0), // wear-out
	})
	cfg := baseSimConfig()
	cfg.Trans.TTOp = bathtub
	var total int
	for i := 0; i < b.N; i++ {
		total = 0
		res, err := sim.Run(sim.RunSpec{Config: cfg, Iterations: benchOpt.Iterations, Seed: benchOpt.Seed})
		if err != nil {
			b.Fatal(err)
		}
		total = res.TotalDDFs
	}
	b.ReportMetric(float64(total)*1000/float64(benchOpt.Iterations), "bathtub_ddfs_per_1000")
}

// BenchmarkScrubShapeAblation tests the paper's §6.4 modeling choice: a
// β = 3 Weibull scrub-time "produces a Normal shaped distribution". The
// ablation swaps in an actual truncated normal with matched moments and
// reports both DDF counts — they should be nearly identical, validating
// the paper's parameterization.
func BenchmarkScrubShapeAblation(b *testing.B) {
	weibullScrub := dist.MustWeibull(3, 168, 6)
	normalScrub := dist.MustTruncated(
		dist.MustNormal(weibullScrub.Mean(), math.Sqrt(weibullScrub.Variance())),
		6, 1000)
	var wCount, nCount int
	for i := 0; i < b.N; i++ {
		for _, scrub := range []dist.Distribution{weibullScrub, normalScrub} {
			cfg := baseSimConfig()
			cfg.Trans.TTScrub = scrub
			res, err := sim.Run(sim.RunSpec{Config: cfg, Iterations: benchOpt.Iterations, Seed: benchOpt.Seed})
			if err != nil {
				b.Fatal(err)
			}
			if scrub == dist.Distribution(weibullScrub) {
				wCount = res.TotalDDFs
			} else {
				nCount = res.TotalDDFs
			}
		}
	}
	b.ReportMetric(float64(wCount)*1000/float64(benchOpt.Iterations), "weibull3_ddfs_per_1000")
	b.ReportMetric(float64(nCount)*1000/float64(benchOpt.Iterations), "truncnormal_ddfs_per_1000")
}

// BenchmarkRDPEncodeRebuild and BenchmarkRSEncodeRebuild compare the two
// double-parity codecs: XOR-only row-diagonal parity versus GF(2^8)
// Reed-Solomon P+Q, on a full write + double-failure rebuild cycle.
func benchmarkCodec(b *testing.B, level raid.Level) {
	const (
		disks      = 8
		stripeSets = 16
		blockSize  = 4096
	)
	r := rng.New(1)
	data := make([][][]byte, stripeSets)
	var probe *raid.Array
	{
		var err error
		probe, err = raid.New(level, disks, stripeSets, blockSize)
		if err != nil {
			b.Fatal(err)
		}
	}
	for set := range data {
		blocks := make([][]byte, probe.DataBlocksPerSet())
		for i := range blocks {
			blk := make([]byte, blockSize)
			for j := range blk {
				blk[j] = byte(r.Uint64())
			}
			blocks[i] = blk
		}
		data[set] = blocks
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := raid.New(level, disks, stripeSets, blockSize)
		if err != nil {
			b.Fatal(err)
		}
		for set := range data {
			if err := a.WriteStripe(set, data[set]); err != nil {
				b.Fatal(err)
			}
		}
		if err := a.FailDisk(1); err != nil {
			b.Fatal(err)
		}
		if err := a.FailDisk(5); err != nil {
			b.Fatal(err)
		}
		if _, err := a.ReplaceDisk(1); err != nil {
			b.Fatal(err)
		}
		if _, err := a.ReplaceDisk(5); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(stripeSets * probe.DataBlocksPerSet() * blockSize))
}

func BenchmarkRDPEncodeRebuild(b *testing.B) { benchmarkCodec(b, raid.RAID6) }

func BenchmarkRSEncodeRebuild(b *testing.B) { benchmarkCodec(b, raid.RAID6RS) }

// ddfsBeforeResult builds one shared heavy-tail run for the DDFsBefore
// benchmarks: a no-scrub configuration so tens of thousands of groups
// carry events.
func ddfsBeforeResult(b *testing.B) *sim.RunResult {
	cfg := baseSimConfig()
	cfg.Trans.TTScrub = nil // no scrub: ~100× more DDFs to index
	res, err := sim.Run(sim.RunSpec{Config: cfg, Iterations: 20000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if res.TotalDDFs == 0 {
		b.Fatal("no events to query")
	}
	return res
}

// ddfsBeforeGrid is the query grid of a typical cumulative-curve render.
func ddfsBeforeGrid(mission float64) []float64 {
	grid := make([]float64, 256)
	for i := range grid {
		grid[i] = mission * float64(i) / float64(len(grid)-1)
	}
	return grid
}

// BenchmarkDDFsBeforeIndexed measures the binary-search path: the flat
// sorted event-time slice is built once, each query is O(log E).
func BenchmarkDDFsBeforeIndexed(b *testing.B) {
	res := ddfsBeforeResult(b)
	grid := ddfsBeforeGrid(core.BaseMissionHours)
	res.DDFsBefore(0) // build the index outside the timed loop
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		for _, t := range grid {
			sink += res.DDFsBefore(t)
		}
	}
	b.ReportMetric(float64(sink/b.N), "counts_per_op")
}

// BenchmarkDDFsBeforeScan measures the pre-optimization behaviour — a
// full per-group scan at every query point — as the comparison baseline.
func BenchmarkDDFsBeforeScan(b *testing.B) {
	res := ddfsBeforeResult(b)
	grid := ddfsBeforeGrid(core.BaseMissionHours)
	scan := func(t float64) int {
		n := 0
		for _, g := range res.PerGroup {
			for _, d := range g {
				if d.Time <= t {
					n++
				}
			}
		}
		return n
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		for _, t := range grid {
			sink += scan(t)
		}
	}
	b.ReportMetric(float64(sink/b.N), "counts_per_op")
}

// BenchmarkAdaptiveCampaign measures the orchestrator end-to-end: batches
// until the 95% Wilson CI on the per-group DDF probability reaches a 20%
// relative half-width on the no-scrub base case.
func BenchmarkAdaptiveCampaign(b *testing.B) {
	cfg := baseSimConfig()
	cfg.Trans.TTScrub = nil
	var iters int
	for i := 0; i < b.N; i++ {
		res, err := campaign.Run(context.Background(), campaign.Spec{
			Config:       cfg,
			Seed:         benchOpt.Seed,
			BatchSize:    500,
			TargetRelErr: 0.2,
		})
		if err != nil {
			b.Fatal(err)
		}
		iters = res.Iterations
	}
	b.ReportMetric(float64(iters), "iterations_to_target")
}

// BenchmarkMarkovComparator measures the uniformization transient solve of
// the Fig. 4 constant-rate chain — the analysis the Monte Carlo engine
// replaces.
func BenchmarkMarkovComparator(b *testing.B) {
	chain, err := markov.NewFigureFourChain(markov.FigureFourRates{
		N: 7, LambdaOp: 1 / 461386.0, LambdaLd: 1.08e-4,
		MuRestore: 1 / 12.0, MuScrub: 1 / 156.0,
	})
	if err != nil {
		b.Fatal(err)
	}
	var p float64
	for i := 0; i < b.N; i++ {
		p, err = chain.AbsorptionProbability(markov.LDFullyFunctional, core.BaseMissionHours)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p, "absorption_prob_10y")
}
