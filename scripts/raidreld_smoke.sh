#!/usr/bin/env bash
# raidreld_smoke.sh — end-to-end smoke test of the raidreld daemon.
#
# Builds raidreld, starts it on an ephemeral port, submits a small
# campaign over HTTP, polls it to completion, fetches the result, then
# submits the identical spec again and asserts the second submission is a
# cache hit (served without re-simulating: the iteration counter in
# /metrics must not move). Finishes with a graceful SIGTERM drain.
#
# Requires only bash + curl + the go toolchain (JSON is picked apart with
# grep/sed so the script runs on a bare CI image).
set -euo pipefail

cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -TERM "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK/raidreld" ./cmd/raidreld

echo "== start"
"$WORK/raidreld" -addr 127.0.0.1:0 -checkpoint-dir "$WORK/ckpt" >"$WORK/out.log" &
DAEMON_PID=$!

ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's/^raidreld: listening on //p' "$WORK/out.log")"
  [ -n "$ADDR" ] && break
  kill -0 "$DAEMON_PID" || { echo "daemon died on startup" >&2; cat "$WORK/out.log" >&2; exit 1; }
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "daemon never announced its address" >&2; exit 1; }
BASE="http://$ADDR"
echo "daemon at $BASE"

curl -fsS "$BASE/healthz" | grep -q '"status": "ok"'

SPEC='{
  "params": {
    "group_size": 8, "redundancy": 1, "mission_hours": 87600,
    "tt_op": {"scale": 461386, "shape": 1.12},
    "ttr": {"location": 6, "scale": 12, "shape": 2}
  },
  "seed": 7, "iterations": 5000
}'

echo "== submit"
SUBMIT="$(curl -fsS -X POST -d "$SPEC" "$BASE/v1/jobs")"
JOB_ID="$(printf '%s' "$SUBMIT" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -1)"
[ -n "$JOB_ID" ] || { echo "no job id in: $SUBMIT" >&2; exit 1; }
echo "job $JOB_ID"

echo "== poll"
STATE=""
for _ in $(seq 1 300); do
  STATE="$(curl -fsS "$BASE/v1/jobs/$JOB_ID" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p' | head -1)"
  case "$STATE" in
    done) break ;;
    failed|canceled) echo "job ended $STATE" >&2; exit 1 ;;
  esac
  sleep 0.1
done
[ "$STATE" = done ] || { echo "job stuck in '$STATE'" >&2; exit 1; }

echo "== result"
RESULT="$(curl -fsS "$BASE/v1/jobs/$JOB_ID/result")"
printf '%s' "$RESULT" | grep -q '"iterations": 5000' || {
  echo "unexpected result: $RESULT" >&2; exit 1; }

ITERS_BEFORE="$(curl -fsS "$BASE/metrics" | sed -n 's/.*"iterations_simulated": \([0-9]*\).*/\1/p')"

echo "== resubmit (must be a cache hit)"
AGAIN="$(curl -fsS -X POST -d "$SPEC" "$BASE/v1/jobs")"
printf '%s' "$AGAIN" | grep -q '"cached": true' || {
  echo "second submission was not served from cache: $AGAIN" >&2; exit 1; }
printf '%s' "$AGAIN" | grep -q "\"id\": \"$JOB_ID\"" || {
  echo "cache hit returned a different job: $AGAIN" >&2; exit 1; }

METRICS="$(curl -fsS "$BASE/metrics")"
ITERS_AFTER="$(printf '%s' "$METRICS" | sed -n 's/.*"iterations_simulated": \([0-9]*\).*/\1/p')"
[ "$ITERS_BEFORE" = "$ITERS_AFTER" ] || {
  echo "cache hit re-simulated: $ITERS_BEFORE -> $ITERS_AFTER" >&2; exit 1; }
printf '%s' "$METRICS" | grep -q '"cache_hits": 1' || {
  echo "cache_hits counter did not move: $METRICS" >&2; exit 1; }

echo "== drain"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
DAEMON_PID=""
grep -q "drained, all in-flight campaigns checkpointed" "$WORK/out.log" || {
  echo "no drain confirmation:" >&2; cat "$WORK/out.log" >&2; exit 1; }

echo "smoke OK"
