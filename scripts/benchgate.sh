#!/usr/bin/env bash
# benchgate.sh [BASE_REF] — benchmark regression gate.
#
# Runs the pinned micro-benchmark set (sampler kernels + both simulation
# engines, plain and biased) at BASE_REF and at the working tree, prints a
# benchstat comparison when benchstat is on PATH, and exits non-zero if any
# pinned benchmark's median sec/op regresses by more than
# MAX_REGRESSION_PCT (default 10).
#
# Skip knobs (see DESIGN.md "Benchmark gate"):
#   * docs-only diffs (every changed file *.md) skip automatically;
#   * the CI job also skips when the PR title contains [skip-bench].
#
# Environment overrides:
#   BENCH_COUNT         repetitions per side (default 10)
#   BENCH_TIME          -benchtime per repetition (default 0.5s)
#   MAX_REGRESSION_PCT  failure threshold in percent (default 10)
set -euo pipefail

BASE_REF="${1:-origin/main}"
COUNT="${BENCH_COUNT:-10}"
BENCHTIME="${BENCH_TIME:-0.5s}"
MAX_PCT="${MAX_REGRESSION_PCT:-10}"
# The pinned set: small, stable benchmarks that cover the per-draw kernels
# and the end-to-end engine iteration. Sub-benchmarks of the listed names
# are included.
PIN='^(BenchmarkKernelWeibull|BenchmarkKernelTilted|BenchmarkKernelFill|BenchmarkEngineTimelineInto|BenchmarkEngineTimelineFlatTopoInto|BenchmarkEngineTimelineBiasedInto|BenchmarkEngineSequentialInto|BenchmarkEngineSequentialBiasedInto|BenchmarkEngineBlockInto|BenchmarkEngineBlockBiasedInto|BenchmarkEngineBlockVRInto|BenchmarkFleetInto)$'
# The batched engine must hold its headline speedup over the scalar
# interval engine (BENCH_sim.json): block median <= sequential/MIN_SPEEDUP.
MIN_SPEEDUP="${MIN_BLOCK_SPEEDUP:-1.5}"
# The biased block path must hold its speedup over the biased interval
# scalar (the batched likelihood-ratio column rework, BENCH_sim.json).
MIN_BIASED_SPEEDUP="${MIN_BIASED_BLOCK_SPEEDUP:-1.4}"
PKGS=". ./internal/dist"

cd "$(dirname "$0")/.."

if changed=$(git diff --name-only "${BASE_REF}...HEAD" 2>/dev/null) && [ -n "$changed" ]; then
  if ! grep -qv '\.md$' <<<"$changed"; then
    echo "benchgate: docs-only diff vs ${BASE_REF}; skipping benchmark gate"
    exit 0
  fi
fi

tmp=$(mktemp -d)
cleanup() {
  git worktree remove --force "$tmp/base" >/dev/null 2>&1 || true
  rm -rf "$tmp"
}
trap cleanup EXIT

run_bench() {
  # shellcheck disable=SC2086  # PKGS is a deliberate word list
  (cd "$1" && go test -run '^$' -bench "$PIN" -count "$COUNT" -benchtime "$BENCHTIME" $PKGS)
}

echo "benchgate: measuring HEAD (working tree), count=$COUNT benchtime=$BENCHTIME"
run_bench . >"$tmp/head.txt"

echo "benchgate: measuring base $BASE_REF"
git worktree add --detach "$tmp/base" "$BASE_REF" >/dev/null
run_bench "$tmp/base" >"$tmp/base.txt" || true

# medians FILE — "name median_ns" per pinned benchmark, sorted by name.
medians() {
  awk '
    /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      for (i = 2; i < NF; i++) if ($(i + 1) == "ns/op") vals[name] = vals[name] " " $i
    }
    END {
      for (name in vals) {
        n = split(vals[name], a, " ")
        for (i = 2; i <= n; i++) {        # insertion sort; n is tiny
          v = a[i]
          for (j = i - 1; j >= 1 && a[j] + 0 > v + 0; j--) a[j + 1] = a[j]
          a[j + 1] = v
        }
        m = (n % 2) ? a[(n + 1) / 2] : (a[n / 2] + a[n / 2 + 1]) / 2
        printf "%s %.2f\n", name, m
      }
    }' "$1" | sort
}

if ! grep -q '^Benchmark' "$tmp/base.txt"; then
  echo "benchgate: base $BASE_REF has none of the pinned benchmarks; nothing to gate"
  exit 0
fi

if command -v benchstat >/dev/null 2>&1; then
  echo
  benchstat "$tmp/base.txt" "$tmp/head.txt" || true
  echo
fi

echo "benchgate: median sec/op, base vs head (fail above +${MAX_PCT}%)"
join <(medians "$tmp/base.txt") <(medians "$tmp/head.txt") |
  awk -v max="$MAX_PCT" '
    {
      delta = ($3 - $2) / $2 * 100
      printf "  %-55s %12.1f %12.1f %+7.1f%%\n", $1, $2, $3, delta
      if (delta > max) { bad = 1; worst = (delta > worst) ? delta : worst }
    }
    END {
      if (bad) {
        printf "benchgate: FAIL — regression of %+.1f%% exceeds %.0f%% threshold\n", worst, max
        exit 1
      }
      print "benchgate: OK"
    }'

# Head-only absolute gate: the block engine's amortized per-iteration cost
# must stay at least MIN_SPEEDUP× below the default event engine's and no
# worse than the faster scalar (interval) engine's. The event-engine ratio
# is ~3× with margin; the interval ratio (~1.6×) drifts with single-core VM
# noise between invocations, so it gates at parity rather than flaking.
# Base refs that predate the block engine simply lack the benchmark, so
# this compares within the head measurement.
medians "$tmp/head.txt" | awk -v min="$MIN_SPEEDUP" '
  $1 == "BenchmarkEngineBlockInto" { block = $2 }
  $1 == "BenchmarkEngineSequentialInto" { seq = $2 }
  $1 == "BenchmarkEngineTimelineInto" { evt = $2 }
  END {
    if (!block || !seq || !evt) {
      print "benchgate: block/scalar medians not all measured; skipping speedup gate"
      exit 0
    }
    printf "benchgate: block %.0f ns vs event %.0f ns (%.2fx, gate >= %.2fx) vs interval %.0f ns (%.2fx, gate >= 1x)\n", \
      block, evt, evt / block, min, seq, seq / block
    if (evt / block < min) {
      print "benchgate: FAIL — batched engine lost its speedup over the event engine"
      exit 1
    }
    if (block > seq) {
      print "benchgate: FAIL — batched engine slower than the scalar interval engine"
      exit 1
    }
  }'

# Head-only biased-path gate: the batched likelihood-ratio columns must
# keep the biased block path at least MIN_BIASED_SPEEDUP× below the biased
# interval scalar. Medians come from the same invocation's -count
# repetitions, which go test interleaves across the whole set — the VM's
# ±20% slow drift between invocations cancels out of the ratio.
medians "$tmp/head.txt" | awk -v min="$MIN_BIASED_SPEEDUP" '
  $1 == "BenchmarkEngineBlockBiasedInto" { block = $2 }
  $1 == "BenchmarkEngineSequentialBiasedInto" { seq = $2 }
  END {
    if (!block || !seq) {
      print "benchgate: biased block/scalar medians not all measured; skipping biased speedup gate"
      exit 0
    }
    printf "benchgate: biased block %.0f ns vs biased interval %.0f ns (%.2fx, gate >= %.2fx)\n", \
      block, seq, seq / block, min
    if (seq / block < min) {
      print "benchgate: FAIL — biased block path lost its speedup over the biased interval scalar"
      exit 1
    }
  }'

# Head-only topology gate: a flat (component-free) topology must compile
# down to the plain per-drive event engine — its median may sit at most
# MAX_PCT above BenchmarkEngineTimelineInto's, i.e. within the same noise
# band the base-vs-head gate tolerates. Catches any accidental per-event
# cost sneaking into the flat fast path.
medians "$tmp/head.txt" | awk -v max="$MAX_PCT" '
  $1 == "BenchmarkEngineTimelineInto" { plain = $2 }
  $1 == "BenchmarkEngineTimelineFlatTopoInto" { flat = $2 }
  END {
    if (!plain || !flat) {
      print "benchgate: flat-topology medians not all measured; skipping topology gate"
      exit 0
    }
    delta = (flat - plain) / plain * 100
    printf "benchgate: flat-topology event engine %.0f ns vs plain %.0f ns (%+.1f%%, gate <= +%.0f%%)\n", \
      flat, plain, delta, max
    if (delta > max) {
      print "benchgate: FAIL — flat topology no longer free on the event-engine hot path"
      exit 1
    }
  }'

# Statistical-efficiency gates: the variance-reduction stack must keep
# reaching the relative-CI target with >= 2x fewer iterations than the
# plain estimator on the paper no-scrub base case, and the conditional-DDF
# variate with >= 3x fewer on the scrubbed base case (the BENCH_sim.json
# variance_reduction figures). The tests fail on any regression.
echo "benchgate: checking iterations-to-CI efficiency figures"
go test ./internal/campaign/ -run '^TestVREfficiencyFigure$' -count 1 >/dev/null || {
  echo "benchgate: FAIL — TestVREfficiencyFigure regressed (VR iterations-to-CI advantage below 2x)"
  exit 1
}
go test ./internal/campaign/ -run '^TestVREfficiencyFigureScrubbed$' -count 1 >/dev/null || {
  echo "benchgate: FAIL — TestVREfficiencyFigureScrubbed regressed (cond-variate iterations-to-CI advantage below 3x)"
  exit 1
}
echo "benchgate: efficiency figures OK"

# Fleet-scale allocation gate: a warm fleet chronology (10^5 idle groups,
# and a smaller busy contended fleet) must stay at 0 steady-state heap
# allocations — the property that makes million-group fleet sweeps
# tractable (BENCH_sim.json BenchmarkFleetInto).
echo "benchgate: checking fleet zero-alloc guard"
go test ./internal/sim/ -run '^TestFleetIntoZeroAlloc' -count 1 >/dev/null || {
  echo "benchgate: FAIL — TestFleetIntoZeroAlloc regressed (fleet chronologies allocate in steady state)"
  exit 1
}
echo "benchgate: fleet zero-alloc guard OK"
