package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// lineBuffer is a goroutine-safe io.Writer the test can poll for the
// daemon's startup line.
type lineBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lineBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lineBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL, the captured output, and a stop function that simulates SIGTERM
// (cancels the signal context) and waits for run to return.
func startDaemon(t *testing.T, extraArgs ...string) (string, *lineBuffer, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &lineBuffer{}
	errc := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	go func() { errc <- run(ctx, args, out) }()

	deadline := time.Now().Add(10 * time.Second)
	var addr string
	for addr == "" {
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never announced its address; output:\n%s", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "raidreld: listening on "); ok {
				addr = rest
			}
		}
		select {
		case err := <-errc:
			t.Fatalf("daemon exited early: %v; output:\n%s", err, out.String())
		default:
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop := func() error {
		cancel()
		select {
		case err := <-errc:
			return err
		case <-time.After(60 * time.Second):
			return fmt.Errorf("daemon did not exit after shutdown signal")
		}
	}
	return "http://" + addr, out, stop
}

func postSpec(t *testing.T, base string, spec string) map[string]any {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit = %d: %v", resp.StatusCode, doc)
	}
	return doc
}

// testSpec is a small fixed-size campaign in the daemon's wire format.
const testSpec = `{
	"params": {
		"group_size": 8, "redundancy": 1, "mission_hours": 87600,
		"tt_op": {"scale": 40000, "shape": 1},
		"ttr": {"scale": 10, "shape": 1}
	},
	"seed": 91, "iterations": 2000
}`

func TestDaemonEndToEnd(t *testing.T) {
	base, out, stop := startDaemon(t)

	var health map[string]any
	getDoc(t, base+"/healthz", &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz: %v", health)
	}

	doc := postSpec(t, base, testSpec)
	id, _ := doc["id"].(string)
	if id == "" {
		t.Fatalf("submit doc: %v", doc)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st map[string]any
		getDoc(t, base+"/v1/jobs/"+id, &st)
		if st["state"] == "done" {
			break
		}
		if st["state"] == "failed" || st["state"] == "canceled" {
			t.Fatalf("job ended %v: %v", st["state"], st["error"])
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	var res map[string]any
	getDoc(t, base+"/v1/jobs/"+id+"/result", &res)
	if res["iterations"] != float64(2000) {
		t.Fatalf("result: %v", res)
	}

	// Identical resubmission is a cache hit on the same job.
	again := postSpec(t, base, testSpec)
	if again["id"] != id || again["cached"] != true {
		t.Fatalf("resubmit was not a cache hit: %v", again)
	}

	if err := stop(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if text := out.String(); !strings.Contains(text, "drained, all in-flight campaigns checkpointed") {
		t.Fatalf("no drain confirmation in output:\n%s", text)
	}
}

// TestDaemonDrainCheckpoints is the SIGTERM acceptance path through the
// real binary wiring: a termination signal while a campaign is in flight
// leaves a current checkpoint behind, and a restarted daemon resumes the
// resubmitted spec from it.
func TestDaemonDrainCheckpoints(t *testing.T) {
	dir := t.TempDir()
	base, _, stop := startDaemon(t, "-checkpoint-dir", dir, "-max-concurrent", "1")

	bigSpec := strings.Replace(testSpec, `"iterations": 2000`, `"iterations": 200000, "batch": 500`, 1)
	doc := postSpec(t, base, bigSpec)
	id, _ := doc["id"].(string)

	// Wait until the campaign has made progress (first batch reported).
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st map[string]any
		getDoc(t, base+"/v1/jobs/"+id, &st)
		if st["progress"] != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no progress before drain: %v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := stop(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ckpt string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt.json") {
			ckpt = filepath.Join(dir, e.Name())
		}
	}
	if ckpt == "" {
		t.Fatalf("no checkpoint written by drain; dir: %v", entries)
	}

	// Restart over the same checkpoint dir and resubmit: the job must
	// resume from the checkpoint rather than start over.
	base2, _, stop2 := startDaemon(t, "-checkpoint-dir", dir, "-max-concurrent", "1")
	doc2 := postSpec(t, base2, bigSpec)
	id2, _ := doc2["id"].(string)
	deadline = time.Now().Add(60 * time.Second)
	for {
		var st map[string]any
		getDoc(t, base2+"/v1/jobs/"+id2, &st)
		if st["state"] == "done" {
			break
		}
		if st["state"] == "failed" || st["state"] == "canceled" {
			t.Fatalf("resumed job ended %v: %v", st["state"], st["error"])
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed job stuck: %v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	var res2 map[string]any
	getDoc(t, base2+"/v1/jobs/"+id2+"/result", &res2)
	resumedFrom, _ := res2["resumed_from"].(float64)
	if resumedFrom <= 0 {
		t.Fatalf("restarted daemon did not resume from the checkpoint: %v", res2)
	}
	if res2["iterations"] != float64(200000) {
		t.Fatalf("resumed job iterations: %v", res2["iterations"])
	}
	if err := stop2(); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

func TestDaemonBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-bogus"}, &out); err == nil {
		t.Fatal("bogus flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-checkpoint-dir", string([]byte{0})}, &out); err == nil {
		t.Fatal("unusable checkpoint dir accepted")
	}
}

func getDoc(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
