// Command raidreld is the reliability-as-a-service daemon: a long-running
// HTTP/JSON server that accepts Monte Carlo campaign requests, schedules
// them over a bounded pool of concurrent campaigns, memoizes results by
// the campaign config fingerprint (a million users asking about the same
// few thousand RAID configs hit cached confidence intervals, not the
// simulation engines), streams live progress over SSE, and merges sharded
// campaigns bit-exactly.
//
// Usage:
//
//	raidreld [-addr :8321] [-max-concurrent 4] [-workers 0]
//	         [-checkpoint-dir DIR] [-drain-timeout 30s]
//
// With -checkpoint-dir set, every in-flight campaign checkpoints after
// each batch; SIGTERM drains gracefully — running campaigns stop at their
// next batch boundary with checkpoints current — and a restarted daemon
// resumes a resubmitted spec from where the previous process stopped.
//
// API (see README for curl examples):
//
//	POST   /v1/jobs            submit a campaign spec
//	GET    /v1/jobs            list jobs
//	GET    /v1/jobs/{id}        status + latest progress
//	GET    /v1/jobs/{id}/result final result with the sparse event index
//	GET    /v1/jobs/{id}/stream live progress (SSE)
//	DELETE /v1/jobs/{id}        cancel
//	POST   /v1/merge           merge completed shard jobs
//	GET    /healthz, /metrics  health and counters
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"raidrel/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "raidreld:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("raidreld", flag.ContinueOnError)
	addr := fs.String("addr", ":8321", "listen address")
	maxConcurrent := fs.Int("max-concurrent", service.DefaultMaxConcurrent, "campaigns simulated concurrently")
	workers := fs.Int("workers", 0, "sim workers per campaign (0 = GOMAXPROCS)")
	checkpointDir := fs.String("checkpoint-dir", "", "directory for per-job campaign checkpoints (empty = no checkpointing)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on SIGTERM")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *checkpointDir != "" {
		if err := os.MkdirAll(*checkpointDir, 0o755); err != nil {
			return fmt.Errorf("-checkpoint-dir: %w", err)
		}
	}

	svc := service.New(service.Options{
		MaxConcurrent: *maxConcurrent,
		Workers:       *workers,
		CheckpointDir: *checkpointDir,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.Handler()}
	fmt.Fprintf(out, "raidreld: listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: refuse new submissions, cancel running campaigns at
	// their next batch boundary (checkpoints stay current), then close the
	// listener once in-flight requests finish.
	fmt.Fprintf(out, "raidreld: draining (budget %s)\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := svc.Drain(dctx)
	shutdownErr := srv.Shutdown(dctx)
	if drainErr != nil {
		return drainErr
	}
	if shutdownErr != nil {
		return shutdownErr
	}
	fmt.Fprintln(out, "raidreld: drained, all in-flight campaigns checkpointed")
	return nil
}
