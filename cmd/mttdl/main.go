// Command mttdl is the classical calculator the paper critiques: it
// evaluates equations 1-3 (MTTDL and the homogeneous-Poisson DDF estimate)
// for an N+1 RAID group, plus the minimum-rebuild-time floor of §6.2.
//
// Usage:
//
//	mttdl [-n 7] [-mtbf 461386] [-mttr 12] [-hours 87600] [-groups 1000]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"raidrel/internal/analytic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mttdl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mttdl", flag.ContinueOnError)
	n := fs.Int("n", 7, "data drives (group size is N+1)")
	mtbf := fs.Float64("mtbf", 461386, "drive MTBF, hours")
	mttr := fs.Float64("mttr", 12, "drive MTTR, hours")
	hours := fs.Float64("hours", 87600, "operating horizon, hours")
	groups := fs.Int("groups", 1000, "RAID groups in the fleet")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in := analytic.MTTDLInput{N: *n, MTBF: *mtbf, MTTR: *mttr}
	exact, err := analytic.MTTDL(in)
	if err != nil {
		return err
	}
	approx, err := analytic.MTTDLSimplified(in)
	if err != nil {
		return err
	}
	expected, err := analytic.ExpectedDDFs(in, *hours, *groups)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "N+1 RAID group: N=%d, MTBF=%.0f h, MTTR=%.1f h\n", *n, *mtbf, *mttr)
	fmt.Fprintf(out, "MTTDL (eq. 1):            %.0f h = %.0f years\n", exact, analytic.Years(exact))
	fmt.Fprintf(out, "MTTDL (eq. 2, mu>>lambda): %.0f h = %.0f years\n", approx, analytic.Years(approx))
	fmt.Fprintf(out, "E[DDFs] (eq. 3):          %.4f over %.0f h across %d groups\n", expected, *hours, *groups)
	fmt.Fprintln(out, "\nCaution: these numbers assume constant failure/repair rates and no")
	fmt.Fprintln(out, "latent defects. The paper (and this library's simulator) shows they")
	fmt.Fprintln(out, "understate double-disk failures by 2x-4000x. Run cmd/raidsim for the")
	fmt.Fprintln(out, "enhanced model.")
	return nil
}
