package main

import (
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"36176 years", "36162 years", "0.2764"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCustomInputs(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "13", "-mtbf", "1000000", "-mttr", "24", "-hours", "8760", "-groups", "100"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "N=13") {
		t.Error("custom N not reflected")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mtbf", "-5"}, &sb); err == nil {
		t.Error("negative MTBF accepted")
	}
	if err := run([]string{"-groups", "0"}, &sb); err == nil {
		t.Error("zero groups accepted")
	}
	if err := run([]string{"-badflag"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
}
