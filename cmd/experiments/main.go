// Command experiments regenerates the tables and figures of Elerath &
// Pecht, DSN 2007, from the raidrel model.
//
// Usage:
//
//	experiments [-iterations N] [-seed S] [-points P] [-csv] <experiment>
//
// where <experiment> is one of: table1, table2, table3, fig1, fig2, fig6,
// fig7, fig8, fig9, fig10, sweepn (group-size sweep), topology
// (shared-hardware designs), fleet (repair-bandwidth sweep), sensitivity
// (tornado analysis), or all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"raidrel/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	iterations := fs.Int("iterations", 10000, "simulated RAID groups per configuration")
	seed := fs.Uint64("seed", 20070625, "master RNG seed")
	points := fs.Int("points", 21, "curve grid points")
	csv := fs.Bool("csv", false, "emit CSV instead of tables/plots")
	bias := fs.Float64("bias", 0, "importance sampling: operational-failure hazard scale factor (0 or 1 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one experiment name, got %d args (try: all)", fs.NArg())
	}
	opt := experiments.Options{Iterations: *iterations, Seed: *seed, CurvePoints: *points, BiasOp: *bias}
	r := renderer{out: out, csv: *csv, opt: opt}

	name := fs.Arg(0)
	if name == "all" {
		for _, n := range []string{"table1", "table2", "table3", "fig1", "fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "sweepn", "topology", "fleet", "sensitivity"} {
			if err := r.render(n); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	}
	return r.render(name)
}
