package main

import (
	"fmt"
	"io"

	"raidrel/internal/core"
	"raidrel/internal/experiments"
	"raidrel/internal/report"
	"raidrel/internal/workload"
)

// renderer formats experiment results for the terminal or as CSV.
type renderer struct {
	out io.Writer
	csv bool
	opt experiments.Options
}

func (r renderer) render(name string) error {
	switch name {
	case "table1":
		return r.table1()
	case "table2":
		return r.table2()
	case "table3":
		return r.table3()
	case "fig1":
		plots, err := experiments.Figure1(r.opt)
		if err != nil {
			return err
		}
		return r.fieldPlots("Figure 1: cumulative probability of failure (3 HDD archetypes)", plots)
	case "fig2":
		plots, err := experiments.Figure2(r.opt)
		if err != nil {
			return err
		}
		return r.fieldPlots("Figure 2: HDD vintage effects", plots)
	case "fig6":
		series, err := experiments.Figure6(r.opt)
		if err != nil {
			return err
		}
		return r.seriesChart("Figure 6: model vs MTTDL, no latent defects (DDFs per 1000 groups)", series)
	case "fig7":
		series, err := experiments.Figure7(r.opt)
		if err != nil {
			return err
		}
		return r.seriesChart("Figure 7: latent defects, no scrub vs 168 h scrub", series)
	case "fig8":
		return r.fig8()
	case "fig9":
		series, err := experiments.Figure9(r.opt)
		if err != nil {
			return err
		}
		return r.seriesChart("Figure 9: scrub duration sweep", series)
	case "fig10":
		series, err := experiments.Figure10(r.opt)
		if err != nil {
			return err
		}
		return r.seriesChart("Figure 10: TTOp shape sweep at fixed characteristic life", series)
	case "sweepn":
		return r.sweepN()
	case "topology":
		return r.topology()
	case "fleet":
		return r.fleet()
	case "sensitivity":
		return r.sensitivity()
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}

func (r renderer) table1() error {
	fmt.Fprintln(r.out, "Table 1: range of average read error rates (latent defects per hour)")
	t := report.NewTable("RER (err/B)", "read rate (B/h)", "defects/hour", "mean time to defect (h)")
	for _, c := range workload.Table1() {
		t.AddRow(
			fmt.Sprintf("%s %.1e", c.RERName, c.RER),
			fmt.Sprintf("%s %.2e", c.ReadRateName, c.BytesPerHour),
			fmt.Sprintf("%.2e", c.ErrorsPerHour),
			fmt.Sprintf("%.0f", 1/c.ErrorsPerHour),
		)
	}
	return t.Render(r.out)
}

func (r renderer) table2() error {
	fmt.Fprintln(r.out, "Table 2: base case input parameters (reconstructed; see DESIGN.md)")
	p := core.BaseCase()
	t := report.NewTable("distribution", "γ (h)", "η (h)", "β")
	add := func(name string, s core.WeibullSpec) {
		t.AddRow(name, fmt.Sprintf("%g", s.Location), fmt.Sprintf("%g", s.Scale), fmt.Sprintf("%g", s.Shape))
	}
	add("TTOp", p.TTOp)
	add("TTR", p.TTR)
	add("TTLd", p.TTLd)
	add("TTScrub", p.TTScrub)
	return t.Render(r.out)
}

func (r renderer) table3() error {
	rows, err := experiments.Table3(r.opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(r.out, "Table 3: DDF comparisons, first year, %d groups simulated per row\n", r.opt.Iterations)
	t := report.NewTable("assumptions", "DDFs in 1st year (per 1000 groups)", "ratio vs MTTDL")
	for _, row := range rows {
		t.AddRow(row.Assumptions, fmt.Sprintf("%.3f", row.FirstYear), fmt.Sprintf("%.1f", row.Ratio))
	}
	return t.Render(r.out)
}

func (r renderer) seriesChart(title string, series []experiments.Series) error {
	if len(series) == 0 {
		return fmt.Errorf("no series")
	}
	if r.csv {
		names := make([]string, len(series))
		values := make([][]float64, len(series))
		for i, s := range series {
			names[i] = s.Name
			values[i] = s.Values
		}
		return report.CSV(r.out, "hours", series[0].Times, names, values)
	}
	plot := report.NewLinePlot(title, series[0].Times)
	plot.XLabel = "hours"
	for _, s := range series {
		if err := plot.Add(s.Name, s.Values); err != nil {
			return err
		}
	}
	if err := plot.Render(r.out); err != nil {
		return err
	}
	t := report.NewTable("series", "final (DDFs/1000 groups)")
	for _, s := range series {
		t.AddRow(s.Name, fmt.Sprintf("%.4g", s.Final()))
	}
	return t.Render(r.out)
}

func (r renderer) sweepN() error {
	rows, err := experiments.GroupSizeSweep(nil, r.opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Group-size sweep: 10-year DDFs per 1000 groups (base case, 168 h scrub)")
	t := report.NewTable("drives (N+1)", "simulated", "per data drive", "MTTDL prediction")
	for _, row := range rows {
		t.AddRow(fmt.Sprintf("%d", row.GroupSize),
			fmt.Sprintf("%.1f", row.Simulated),
			fmt.Sprintf("%.2f", row.PerDataDrive),
			fmt.Sprintf("%.3f", row.MTTDLPrediction))
	}
	return t.Render(r.out)
}

func (r renderer) topology() error {
	rows, err := experiments.TopologySweep(r.opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Topology sweep: shared-hardware designs at fixed drives and RAID redundancy")
	t := report.NewTable("design", "DDFs/1000 groups", "unavail onsets/1000", "p(group unavailable)")
	for _, row := range rows {
		t.AddRow(row.Design,
			fmt.Sprintf("%.2f", row.DDFs),
			fmt.Sprintf("%.1f", row.Unavail),
			fmt.Sprintf("%.3f", row.PUnavail))
	}
	if err := t.Render(r.out); err != nil {
		return err
	}
	fmt.Fprintln(r.out, "unavailability onsets are access-loss episodes, not data loss; the flat row is 0 by construction")
	return nil
}

func (r renderer) fleet() error {
	rows, err := experiments.FleetSweep(r.opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Fleet sweep: repair slots x fleet size at base case with 96 h bandwidth-limited rebuilds")
	t := report.NewTable("fleet", "repair slots", "DDFs/1000 groups", "rebuilds queued", "mean wait (h)", "max wait (h)", "max exposure (h)")
	for _, row := range rows {
		slots := fmt.Sprintf("%d", row.Slots)
		if row.Slots == 0 {
			slots = "unlimited"
		}
		t.AddRow(fmt.Sprintf("%d", row.Groups), slots,
			fmt.Sprintf("%.2f", row.DDFs),
			fmt.Sprintf("%.1f%%", 100*row.WaitFrac),
			fmt.Sprintf("%.1f", row.MeanWaitH),
			fmt.Sprintf("%.1f", row.MaxWaitH),
			fmt.Sprintf("%.1f", row.MaxExposureH))
	}
	if err := t.Render(r.out); err != nil {
		return err
	}
	fmt.Fprintln(r.out, "queued rebuilds wait for a fleet-wide repair slot (most-degraded group first); the unlimited row is the independent-group baseline")
	return nil
}

func (r renderer) sensitivity() error {
	rows, err := experiments.Sensitivity(0.5, r.opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Sensitivity tornado: 10-year DDFs per 1000 groups with each input at ±50%")
	t := report.NewTable("parameter", "-50%", "base", "+50%", "swing")
	for _, row := range rows {
		t.AddRow(row.Parameter,
			fmt.Sprintf("%.1f", row.Low),
			fmt.Sprintf("%.1f", row.Base),
			fmt.Sprintf("%.1f", row.High),
			fmt.Sprintf("%.1f", row.Swing))
	}
	return t.Render(r.out)
}

func (r renderer) fig8() error {
	series, err := experiments.Figure8(r.opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Figure 8: ROCOF — DDFs per 1000 groups per fixed window")
	t := report.NewTable("case", "window mid (h)", "DDFs in window", "trend")
	for _, s := range series {
		trend := "flat/decreasing"
		if s.Increasing {
			trend = "increasing"
		}
		for _, p := range s.Points {
			t.AddRow(s.Name, fmt.Sprintf("%.0f", p.TimeMid), fmt.Sprintf("%.3f", p.Count), trend)
		}
	}
	if err := t.Render(r.out); err != nil {
		return err
	}
	for _, s := range series {
		if s.PowerLaw.Events == 0 {
			continue
		}
		fmt.Fprintf(r.out, "%s: Crow-AMSAA growth exponent β = %.3f (z = %.1f vs HPP; β > 1 means deteriorating)\n",
			s.Name, s.PowerLaw.Beta, s.GrowthZ)
	}
	return nil
}

func (r renderer) fieldPlots(title string, plots []experiments.FieldPlot) error {
	fmt.Fprintln(r.out, title)
	t := report.NewTable("population", "F", "S", "MRR β", "MRR R²", "MLE β", "MLE η", "GoF p", "structure")
	for _, p := range plots {
		structure := "linear (single Weibull)"
		if p.HasChangepoint {
			structure = fmt.Sprintf("bend: slope %.2f → %.2f", p.EarlySlope, p.LateSlope)
		}
		t.AddRow(p.Name,
			fmt.Sprintf("%d", p.Failures),
			fmt.Sprintf("%d", p.Suspensions),
			fmt.Sprintf("%.3f", p.MRR.Shape),
			fmt.Sprintf("%.3f", p.MRR.R2),
			fmt.Sprintf("%.3f", p.MLE.Shape),
			fmt.Sprintf("%.3g", p.MLE.Scale),
			fmt.Sprintf("%.2f", p.GoFPValue),
			structure,
		)
	}
	if err := t.Render(r.out); err != nil {
		return err
	}
	if r.csv {
		for _, p := range plots {
			fmt.Fprintf(r.out, "\n# %s probability plot (X=ln t, Y=ln(-ln(1-F)))\n", p.Name)
			x := make([]float64, len(p.Points))
			y := make([]float64, len(p.Points))
			for i, pt := range p.Points {
				x[i] = pt.X
				y[i] = pt.Y
			}
			if err := report.CSV(r.out, "lnT", x, []string{"Y"}, [][]float64{y}); err != nil {
				return err
			}
		}
	}
	return nil
}
