package main

import (
	"strings"
	"testing"
)

func TestRunValidation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil {
		t.Error("no experiment name accepted")
	}
	if err := run([]string{"nosuch"}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-iterations", "0", "fig7"}, &sb); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestRunStaticTables(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"table1"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"8.0e-15", "1.08e-03", "92593"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := run([]string{"table2"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"461386", "TTScrub", "1.12"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("table2 missing %q", want)
		}
	}
}

func TestRunSimulatedExperiments(t *testing.T) {
	cases := []struct {
		name string
		want string
	}{
		{"table3", "MTTDL"},
		{"fig7", "no scrub"},
		{"fig8", "ROCOF"}, // trend labels are noise at 60 iterations
		{"fig9", "12 h scrub"},
		{"fig10", "β = 0.80"},
		{"sweepn", "per data drive"},
		{"topology", "dual-pathed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			if err := run([]string{"-iterations", "60", "-points", "4", tc.name}, &sb); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(sb.String(), tc.want) {
				t.Errorf("%s output missing %q:\n%s", tc.name, tc.want, sb.String())
			}
		})
	}
}

func TestRunCSVMode(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-iterations", "60", "-points", "4", "-csv", "fig9"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "hours,") {
		t.Errorf("CSV header missing:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 5 { // header + 4 grid points
		t.Errorf("%d CSV lines", lines)
	}
}

func TestRunFieldExperiments(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-iterations", "1", "fig1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "HDD #1") {
		t.Error("fig1 missing population labels")
	}
	sb.Reset()
	if err := run([]string{"-iterations", "1", "-csv", "fig2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "lnT,Y") {
		t.Error("fig2 CSV plot points missing")
	}
}
