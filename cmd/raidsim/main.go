// Command raidsim runs the enhanced RAID reliability model for an
// arbitrary configuration and prints the cumulative double-disk-failure
// curve, the cause breakdown, and the comparison against the MTTDL
// estimate. Campaigns can be fixed-size (-iterations) or adaptive:
// -target-rel-err keeps simulating in batches until the confidence
// interval on the DDF rate is tight enough, -checkpoint/-resume survive
// kills bit-for-bit, and -progress streams live telemetry to stderr.
//
// Usage (all flags optional; defaults are the paper's base case):
//
//	raidsim [-drives 8] [-redundancy 1] [-mission 87600]
//	        [-op-eta 461386] [-op-beta 1.12]
//	        [-ttr-gamma 6] [-ttr-eta 12] [-ttr-beta 2]
//	        [-ld-rate 1.08e-4] [-scrub 168]
//	        [-topology topo.json]
//	        [-fleet 100] [-repair-slots 4]
//	        [-iterations 10000] [-seed 1] [-csv]
//	        [-trace]
//	        [-target-rel-err 0.1] [-confidence 0.95]
//	        [-max-iterations N] [-max-duration 1h] [-batch 1000]
//	        [-checkpoint c.json] [-resume c.json] [-progress[=json]]
//	        [-bias 4] [-bias-ld 1]
//	        [-vr antithetic,stratify,cv|cond] [-batch-block 256]
//	        [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// -topology loads a component topology — the shared failure domains
// (enclosures, expanders, controllers) the drives sit behind — as a JSON
// document of the core.TopologySpec schema:
//
//	{"components": [
//	  {"name": "enclosure", "drives": [0,1,2,3,4,5,6,7],
//	   "tt_op": {"scale": 200000, "shape": 1}, "ttr": {"scale": 2000, "shape": 1}},
//	  {"name": "expander", "parent": "enclosure", "paths": 2,
//	   "tt_op": {"scale": 150000, "shape": 1}, "ttr": {"scale": 300, "shape": 1}}
//	]}
//
// A component outage makes every drive behind it inaccessible at once and
// pauses their rebuilds — distinct from data loss, reported separately as
// unavailability onsets. Coupled topologies run on the event engine and
// cannot combine with -vr or a spare pool.
//
// -fleet couples every N simulated groups into one fleet chronology and
// -repair-slots bounds its repair bandwidth: at most K rebuilds run
// concurrently fleet-wide (0 = unlimited), with queued rebuilds granted to
// the most-degraded group first. The summary then includes the heal
// backlog — queue depth, rebuild waits, and the worst degradation
// exposure. Iteration counts round up to whole chronologies. Fleet runs
// cannot combine with -vr, -bias, or -topology.
//
// -bias enables importance sampling: operational-failure hazards are
// scaled up by the factor during sampling and every estimate is
// reweighted by the likelihood ratio, so rare DDFs are resolved with far
// fewer iterations at unchanged expectation.
//
// -vr stacks block-level variance reduction on top (see DESIGN.md §12):
// antithetic stream pairs, stratified first-failure quantiles, and a
// control — the indicator control variate ("cv") for no-scrub regimes, or
// the conditional-DDF variate ("cond") for scrubbed ones, where the
// indicator loses its correlation ("all" enables antithetic+stratify+cv;
// "cond" requires a memoryless defect process and excludes "cv"). Any -vr
// value, or a bare -batch-block, routes the run through the batched block
// engine, which is bit-identical to the scalar engines when no technique
// is enabled.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"strings"

	"raidrel/internal/campaign"
	"raidrel/internal/core"
	"raidrel/internal/report"
	"raidrel/internal/scrub"
	"raidrel/internal/sim"
)

func main() {
	// Between-batch cancellation: on SIGINT/SIGTERM the campaign loop
	// finishes its current batch, leaves the checkpoint current, and the
	// partial summary still prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "raidsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("raidsim", flag.ContinueOnError)
	drives := fs.Int("drives", 8, "drives in the group (N+1)")
	redundancy := fs.Int("redundancy", 1, "tolerated simultaneous losses (1=RAID5, 2=RAID6)")
	mission := fs.Float64("mission", 87600, "mission, hours")
	opEta := fs.Float64("op-eta", core.BaseMTBFHours, "TTOp characteristic life, hours")
	opBeta := fs.Float64("op-beta", 1.12, "TTOp shape")
	ttrGamma := fs.Float64("ttr-gamma", 6, "TTR minimum, hours")
	ttrEta := fs.Float64("ttr-eta", 12, "TTR characteristic life, hours")
	ttrBeta := fs.Float64("ttr-beta", 2, "TTR shape")
	ldRate := fs.Float64("ld-rate", 1.08e-4, "latent defects per drive-hour (0 disables)")
	scrubHours := fs.Float64("scrub", 168, "scrub period, hours (0 disables)")
	topoFile := fs.String("topology", "", "JSON component-topology file (shared failure domains; empty = flat drives-only model)")
	fleet := fs.Int("fleet", 0, "couple every N groups into one fleet chronology (0 = independent groups)")
	repairSlots := fs.Int("repair-slots", 0, "fleet-wide concurrent-rebuild cap, most-degraded group first (0 = unlimited; requires -fleet)")
	iterations := fs.Int("iterations", 10000, "simulated RAID groups (fixed-size campaigns)")
	seed := fs.Uint64("seed", 1, "RNG seed")
	csv := fs.Bool("csv", false, "emit the cumulative curve as CSV")
	trace := fs.Bool("trace", false, "render a single group's Fig.-5 timing diagram instead of a campaign")
	targetRelErr := fs.Float64("target-rel-err", 0, "adaptive: stop when the DDF-rate CI relative half-width reaches this (0 disables)")
	confidence := fs.Float64("confidence", 0.95, "adaptive: confidence level for the stopping CI")
	maxIterations := fs.Int("max-iterations", 0, "adaptive: hard iteration budget (0 = unlimited)")
	maxDuration := fs.Duration("max-duration", 0, "adaptive: wall-clock budget, e.g. 30m (0 = unlimited)")
	batch := fs.Int("batch", 0, "adaptive: iterations per batch (0 = default)")
	checkpoint := fs.String("checkpoint", "", "adaptive: write a resumable checkpoint file after every batch")
	resume := fs.String("resume", "", "adaptive: restore campaign state from a checkpoint file")
	var progress progressMode
	fs.Var(&progress, "progress", "adaptive: stream per-batch telemetry to stderr; -progress means text, -progress=json emits one JSON object per batch")
	bias := fs.Float64("bias", 0, "importance sampling: operational-failure hazard scale factor (0 or 1 = off)")
	biasLd := fs.Float64("bias-ld", 0, "importance sampling: latent-defect hazard scale factor (0 or 1 = off; rarely useful, see DESIGN.md)")
	vrFlag := fs.String("vr", "", "variance reduction: comma list of antithetic, stratify, cv, cond — or all (empty = off)")
	batchBlock := fs.Int("batch-block", 0, "block engine batch length / VR block size (0 = default; setting it routes through the block engine)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the campaign to this file (go tool pprof)")
	memProfile := fs.String("memprofile", "", "write a heap profile (after GC) to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "raidsim: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "raidsim: -memprofile:", err)
			}
		}()
	}
	if *ldRate < 0 {
		return fmt.Errorf("-ld-rate %v negative (use 0 to disable latent defects)", *ldRate)
	}
	if *scrubHours < 0 {
		return fmt.Errorf("-scrub %v negative (use 0 to disable scrubbing)", *scrubHours)
	}

	p := core.Params{
		GroupSize:    *drives,
		Redundancy:   *redundancy,
		MissionHours: *mission,
		TTOp:         core.WeibullSpec{Scale: *opEta, Shape: *opBeta},
		TTR:          core.WeibullSpec{Location: *ttrGamma, Scale: *ttrEta, Shape: *ttrBeta},
	}
	if *ldRate > 0 {
		p.LatentDefects = true
		p.TTLd = core.WeibullSpec{Scale: 1 / *ldRate, Shape: 1}
		// Periodic(0) is the disabled policy, so one call covers both the
		// scrubbing and the -scrub 0 case.
		var err error
		p, err = scrub.Periodic(*scrubHours).Apply(p)
		if err != nil {
			return err
		}
	}
	if *topoFile != "" {
		data, err := os.ReadFile(*topoFile)
		if err != nil {
			return fmt.Errorf("-topology: %w", err)
		}
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		var ts core.TopologySpec
		if err := dec.Decode(&ts); err != nil {
			return fmt.Errorf("-topology %s: %w", *topoFile, err)
		}
		p.Topology = &ts
	}
	p.Bias.Op = *bias
	p.Bias.Ld = *biasLd
	vr, err := parseVR(*vrFlag)
	if err != nil {
		return err
	}
	if *batchBlock < 0 {
		return fmt.Errorf("-batch-block %d negative", *batchBlock)
	}
	vr.BlockSize = *batchBlock
	p.VR = vr
	if *fleet > 0 {
		p.Fleet = &sim.FleetOptions{Groups: *fleet, MaxConcurrentRebuilds: *repairSlots}
	} else if *fleet < 0 {
		return fmt.Errorf("-fleet %d negative (use 0 for independent groups)", *fleet)
	} else if *repairSlots != 0 {
		return fmt.Errorf("-repair-slots needs -fleet (a repair cap is a fleet-wide property)")
	}
	if *trace {
		return renderTrace(out, p, *seed)
	}
	m, err := core.New(p)
	if err != nil {
		return err
	}

	// Any non-zero value routes through the campaign orchestrator, whose
	// validation rejects nonsense (negative targets, negative budgets)
	// instead of silently falling back to a fixed-size run.
	adaptive := *targetRelErr != 0 || *maxIterations != 0 || *maxDuration != 0 ||
		*checkpoint != "" || *resume != "" || progress != progressOff || *batch != 0
	var res *core.Result
	var camp *campaign.Result
	if adaptive {
		opts := core.AdaptiveOptions{
			TargetRelErr:  *targetRelErr,
			Confidence:    *confidence,
			BatchSize:     *batch,
			MaxIterations: *maxIterations,
			MaxDuration:   *maxDuration,
			Checkpoint:    *checkpoint,
			Resume:        *resume,
		}
		switch progress {
		case progressText:
			opts.Progress = campaign.StderrProgress()
		case progressJSON:
			opts.Progress = campaign.JSONProgress(os.Stderr)
		}
		if opts.TargetRelErr == 0 && opts.MaxIterations == 0 && opts.MaxDuration == 0 {
			// Checkpointing or telemetry on an otherwise fixed-size
			// campaign: bound it by the -iterations count.
			opts.MaxIterations = *iterations
		}
		ares, err := m.RunAdaptive(ctx, *seed, opts)
		if err != nil {
			return err
		}
		res, camp = ares.Result, ares.Campaign
	} else {
		if res, err = m.Run(*iterations, *seed); err != nil {
			return err
		}
	}

	times, values := res.Curve(21)
	if *csv {
		return report.CSV(out, "hours", times, []string{"ddfs_per_1000_groups"}, [][]float64{values})
	}
	plot := report.NewLinePlot(
		fmt.Sprintf("DDFs per 1000 groups, %d drives, redundancy %d", *drives, *redundancy), times)
	plot.XLabel = "hours"
	if err := plot.Add("model", values); err != nil {
		return err
	}
	if err := plot.Render(out); err != nil {
		return err
	}
	opop, ldop := res.CauseBreakdown()
	fmt.Fprintf(out, "\nmission total: %.4g DDFs per 1000 groups (%.4g op+op, %.4g ld+op)\n",
		values[len(values)-1], opop, ldop)
	if p.Topology != nil {
		fmt.Fprintf(out, "availability:  %.4g unavailability onsets per 1000 groups (%.3g of groups affected; not data loss)\n",
			res.UnavailPer1000Groups(), res.GroupUnavailProbability())
	}
	if f := res.Fleet(); f != nil {
		fmt.Fprintf(out, "fleet:         %d chronologies x %d groups: %d failures, %d rebuilds done (%d waited for a repair slot)\n",
			f.Chronologies, f.GroupsPer, f.Failures, f.Rebuilds, f.Waited)
		fmt.Fprintf(out, "               heal backlog: mean queue depth %.3g (peak %d), mean wait %.3g h (worst %.3g h), worst exposure %.4g h\n",
			f.MeanQueueDepth(), f.MaxQueueDepth, f.MeanWaitHours(), f.MaxWaitHours, f.MaxExposureHours)
	}
	if camp != nil {
		fmt.Fprintf(out, "campaign:      %d groups in %d batches, stopped: %s\n",
			camp.Iterations, camp.Batches, camp.Reason)
		fmt.Fprintf(out, "               p(DDF per group) CI%.0f [%.3g, %.3g], relative half-width %.3g\n",
			camp.CI.Level*100, camp.CI.Lo, camp.CI.Hi, camp.RelErr)
		if camp.ESS > 0 {
			fmt.Fprintf(out, "               importance sampling: effective sample size %.1f of %d event groups\n",
				camp.ESS, camp.GroupsWithDDF)
		}
		if camp.VRFactor > 0 {
			fmt.Fprintf(out, "               variance reduction: %.2fx fewer iterations to equal precision (%d antithetic pairs, control coeff %.3g)\n",
				camp.VRFactor, camp.VRPairs, camp.VRCoeff)
			if bd := camp.VRByVariate; bd != nil {
				fmt.Fprintf(out, "               per variate:")
				for _, v := range []struct {
					name string
					f    float64
				}{{"antithetic", bd.Antithetic}, {"stratified", bd.Stratified}, {"control", bd.Control}, {"cond", bd.Cond}} {
					if v.f > 0 {
						fmt.Fprintf(out, " %s %.2fx", v.name, v.f)
					}
				}
				fmt.Fprintln(out)
			}
		}
	}
	cmp, err := m.CompareWithMTTDL(res, *mission)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "MTTDL view:    %.4g DDFs per 1000 groups (MTTDL %.0f years) -> model/MTTDL ratio %.1f\n",
		cmp.MTTDL, cmp.MTTDLYears, cmp.Ratio)
	return nil
}

// parseVR decodes the -vr flag: a comma-separated list of variance-
// reduction techniques, or "all" for the full stack.
func parseVR(s string) (sim.VR, error) {
	var v sim.VR
	for _, tok := range strings.Split(s, ",") {
		switch strings.TrimSpace(tok) {
		case "":
		case "antithetic":
			v.Antithetic = true
		case "stratify":
			v.Stratify = true
		case "cv", "control-variate":
			v.ControlVariate = true
		case "cond", "cond-variate":
			v.CondVariate = true
		case "all":
			v.Antithetic, v.Stratify, v.ControlVariate = true, true, true
		default:
			return sim.VR{}, fmt.Errorf("-vr: unknown technique %q (want antithetic, stratify, cv, cond, or all)", strings.TrimSpace(tok))
		}
	}
	return v, nil
}

// progressMode is the -progress flag: a boolean flag (bare -progress
// streams the human-readable text lines) that also accepts a format
// value, so -progress=json streams the machine-readable frames of
// campaign.JSONProgress — the same schema raidreld serves over SSE.
// Like any boolean flag, a value must be attached with '=': use
// -progress=json, not -progress json.
type progressMode string

const (
	progressOff  progressMode = ""
	progressText progressMode = "text"
	progressJSON progressMode = "json"
)

// String implements flag.Value.
func (m *progressMode) String() string { return string(*m) }

// Set implements flag.Value.
func (m *progressMode) Set(v string) error {
	switch v {
	case "true", "text":
		*m = progressText
	case "false", "":
		*m = progressOff
	case "json":
		*m = progressJSON
	default:
		return fmt.Errorf("want text or json, got %q", v)
	}
	return nil
}

// IsBoolFlag lets a bare -progress (no value) parse as -progress=true.
func (m *progressMode) IsBoolFlag() bool { return true }
