package main

import (
	"fmt"
	"io"

	"raidrel/internal/core"
	"raidrel/internal/report"
	"raidrel/internal/rng"
	"raidrel/internal/sim"
)

// lanesFromTrace folds a chronology event stream into per-slot down and
// defect intervals for the timing diagram.
func lanesFromTrace(trace *sim.Trace, drives int, horizon float64) []report.TimingLane {
	type slotAcc struct {
		downSince   float64
		down        bool
		defectCount int
		defectSince float64
		lane        report.TimingLane
	}
	accs := make([]slotAcc, drives)
	for i := range accs {
		accs[i].lane.Label = fmt.Sprintf("slot %d", i)
	}
	closeDefect := func(a *slotAcc, t float64) {
		if a.defectCount > 0 {
			a.lane.Defects = append(a.lane.Defects, [2]float64{a.defectSince, t})
			a.defectCount = 0
		}
	}
	for _, e := range trace.Events {
		if e.Slot < 0 || e.Slot >= drives {
			continue
		}
		a := &accs[e.Slot]
		switch e.Kind {
		case sim.TraceOpFail:
			closeDefect(a, e.Time) // the dead drive's defects die with it
			a.down, a.downSince = true, e.Time
		case sim.TraceOpRestore:
			if a.down {
				a.lane.Down = append(a.lane.Down, [2]float64{a.downSince, e.Time})
				a.down = false
			}
		case sim.TraceDefect:
			if a.defectCount == 0 {
				a.defectSince = e.Time
			}
			a.defectCount++
		case sim.TraceScrub:
			if a.defectCount > 0 {
				a.defectCount--
				if a.defectCount == 0 {
					a.lane.Defects = append(a.lane.Defects, [2]float64{a.defectSince, e.Time})
				}
			}
		}
	}
	lanes := make([]report.TimingLane, drives)
	for i := range accs {
		a := &accs[i]
		if a.down {
			a.lane.Down = append(a.lane.Down, [2]float64{a.downSince, horizon})
		}
		if a.defectCount > 0 {
			a.lane.Defects = append(a.lane.Defects, [2]float64{a.defectSince, horizon})
		}
		lanes[i] = a.lane
	}
	return lanes
}

// renderTrace simulates a single group chronology and prints its Fig.-5
// style timing diagram plus the event log.
func renderTrace(out io.Writer, p core.Params, seed uint64) error {
	m, err := core.New(p)
	if err != nil {
		return err
	}
	cfg := m.SimConfig()
	var trace sim.Trace
	ddfs, err := sim.SimulateTraced(cfg, rng.New(seed), &trace)
	if err != nil {
		return err
	}
	diagram := &report.TimingDiagram{
		Title:   fmt.Sprintf("group chronology, seed %d (Fig. 5 style)", seed),
		Horizon: p.MissionHours,
		Width:   100,
		Lanes:   lanesFromTrace(&trace, p.GroupSize, p.MissionHours),
	}
	for _, d := range ddfs {
		label := byte('X') // op+op
		if d.Cause == sim.CauseLdOp {
			label = 'L'
		}
		diagram.Marks = append(diagram.Marks, report.TimingMark{Time: d.Time, Label: label})
	}
	if err := diagram.Render(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "\n%d op failures, %d defects, %d scrub corrections, %d DDFs (X op+op, L ld+op)\n",
		trace.Count(sim.TraceOpFail), trace.Count(sim.TraceDefect),
		trace.Count(sim.TraceScrub), len(ddfs))
	for _, d := range ddfs {
		fmt.Fprintf(out, "  DDF at %8.0f h (%s)\n", d.Time, d.Cause)
	}
	return nil
}
