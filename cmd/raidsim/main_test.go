package main

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultsReduced(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-iterations", "200"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"mission total", "MTTDL view", "ld+op"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	var sb strings.Builder
	err := run(context.Background(), []string{
		"-iterations", "200", "-cpuprofile", cpu, "-memprofile", mem,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mission total") {
		t.Errorf("campaign output missing with profiling enabled:\n%s", sb.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-iterations", "100", "-csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "hours,ddfs_per_1000_groups") {
		t.Errorf("CSV header missing:\n%s", sb.String())
	}
}

func TestRunNoLatentDefects(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-iterations", "100", "-ld-rate", "0"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0 ld+op") {
		t.Errorf("latent defects disabled but output says otherwise:\n%s", sb.String())
	}
}

func TestRunRAID6(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-iterations", "100", "-redundancy", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "redundancy 2") {
		t.Errorf("redundancy not reflected:\n%s", sb.String())
	}
}

func TestRunTraceMode(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-trace", "-seed", "3", "-ld-rate", "3e-4"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"slot 0", "slot 7", "op failures", "defects"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q", want)
		}
	}
}

func TestRunValidation(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-drives", "1"}, &sb); err == nil {
		t.Error("single drive accepted")
	}
	if err := run(context.Background(), []string{"-op-beta", "-2"}, &sb); err == nil {
		t.Error("negative shape accepted")
	}
	if err := run(context.Background(), []string{"-iterations", "0"}, &sb); err == nil {
		t.Error("zero iterations accepted")
	}
	if err := run(context.Background(), []string{"-target-rel-err", "-0.5"}, &sb); err == nil {
		t.Error("negative target silently ignored instead of rejected")
	}
	if err := run(context.Background(), []string{"-batch", "-5", "-max-iterations", "100"}, &sb); err == nil {
		t.Error("negative batch size accepted")
	}
	if err := run(context.Background(), []string{"-ld-rate", "-1e-4"}, &sb); err == nil {
		t.Error("negative latent-defect rate accepted")
	}
	if err := run(context.Background(), []string{"-scrub", "-24"}, &sb); err == nil {
		t.Error("negative scrub period accepted")
	}
	if err := run(context.Background(), []string{"-bias", "-2"}, &sb); err == nil {
		t.Error("negative bias factor accepted")
	}
}

// -scrub 0 with latent defects on must disable scrubbing and still run:
// the disabled policy is one Periodic(0) call, with no second Apply
// clobbering the first one's error.
func TestRunScrubDisabled(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-iterations", "100", "-ld-rate", "3e-4", "-scrub", "0"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mission total") {
		t.Errorf("scrub-disabled run produced no summary:\n%s", sb.String())
	}
}

// A biased adaptive campaign must surface the effective sample size in
// the campaign block.
func TestRunBiasReportsESS(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{
		"-op-eta", "40000", "-op-beta", "1", "-ld-rate", "0",
		"-max-iterations", "200", "-batch", "100", "-bias", "3",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "effective sample size") {
		t.Errorf("biased campaign output missing ESS line:\n%s", sb.String())
	}
}

// Adaptive mode with an iteration budget must report the campaign
// telemetry block alongside the usual outputs.
func TestRunAdaptiveBudget(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{
		"-max-iterations", "400", "-batch", "150", "-target-rel-err", "1e-6",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"campaign:", "400 groups in 3 batches", "iteration budget exhausted",
		"p(DDF per group) CI95", "MTTDL view",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("adaptive output missing %q:\n%s", want, out)
		}
	}
}

// -checkpoint alone bounds the campaign by -iterations and leaves a
// resumable file; -resume picks it up and stops immediately with the
// same totals.
func TestRunCheckpointThenResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.json")
	var first strings.Builder
	err := run(context.Background(), []string{
		"-iterations", "300", "-batch", "100", "-checkpoint", path, "-ld-rate", "3e-4", "-scrub", "0",
	}, &first)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "300 groups in 3 batches") {
		t.Fatalf("checkpointed campaign summary wrong:\n%s", first.String())
	}

	var second strings.Builder
	err = run(context.Background(), []string{
		"-iterations", "300", "-batch", "100", "-resume", path, "-ld-rate", "3e-4", "-scrub", "0",
	}, &second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second.String(), "300 groups in 3 batches") {
		t.Fatalf("resumed campaign summary wrong:\n%s", second.String())
	}
	if first.String() != second.String() {
		t.Errorf("resumed output differs from original:\n--- first\n%s--- second\n%s", first.String(), second.String())
	}
}

// Resuming under a different configuration must fail loudly, not
// silently mix streams.
func TestRunResumeMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.json")
	var sb strings.Builder
	if err := run(context.Background(), []string{
		"-iterations", "100", "-checkpoint", path,
	}, &sb); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{
		"-iterations", "100", "-resume", path, "-seed", "99",
	}, &sb); err == nil {
		t.Error("resume with mismatched seed accepted")
	}
	if err := run(context.Background(), []string{
		"-iterations", "100", "-resume", path, "-drives", "9",
	}, &sb); err == nil {
		t.Error("resume with mismatched config accepted")
	}
}

// captureStderr runs f with os.Stderr redirected to a pipe and returns
// what f wrote there (progress telemetry goes to stderr by design, so
// stdout stays machine-parseable).
func captureStderr(t *testing.T, f func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stderr
	os.Stderr = w
	defer func() { os.Stderr = orig }()
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	f()
	w.Close()
	return <-done
}

func TestRunProgressJSON(t *testing.T) {
	var sb strings.Builder
	telemetry := captureStderr(t, func() {
		if err := run(context.Background(), []string{"-iterations", "300", "-progress=json"}, &sb); err != nil {
			t.Error(err)
		}
	})
	lines := strings.Split(strings.TrimSpace(telemetry), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatalf("no JSON telemetry on stderr:\n%s", telemetry)
	}
	for _, line := range lines {
		var frame map[string]any
		if err := json.Unmarshal([]byte(line), &frame); err != nil {
			t.Fatalf("telemetry line is not JSON: %v\n%s", err, line)
		}
		if _, ok := frame["iterations"]; !ok {
			t.Fatalf("frame missing iterations: %s", line)
		}
	}
	var final map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &final); err != nil {
		t.Fatal(err)
	}
	if final["done"] != true || final["iterations"] != float64(300) {
		t.Fatalf("final frame: %v", final)
	}
	if !strings.Contains(sb.String(), "mission total") {
		t.Errorf("summary missing with -progress=json:\n%s", sb.String())
	}
}

func TestRunProgressText(t *testing.T) {
	var sb strings.Builder
	telemetry := captureStderr(t, func() {
		// Bare -progress must still parse as a boolean flag and mean text.
		if err := run(context.Background(), []string{"-iterations", "300", "-progress"}, &sb); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(telemetry, "campaign: done") {
		t.Fatalf("no text telemetry on stderr:\n%s", telemetry)
	}
	// -progress=false and -progress=text must parse too.
	if err := run(context.Background(), []string{"-iterations", "100", "-progress=false"}, &strings.Builder{}); err != nil {
		t.Errorf("-progress=false rejected: %v", err)
	}
	telemetry = captureStderr(t, func() {
		if err := run(context.Background(), []string{"-iterations", "100", "-progress=text"}, &strings.Builder{}); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(telemetry, "campaign: done") {
		t.Fatalf("-progress=text produced no text telemetry:\n%s", telemetry)
	}
}

func TestRunProgressBadMode(t *testing.T) {
	err := captureStderrErr(func() error {
		return run(context.Background(), []string{"-progress=yaml"}, &strings.Builder{})
	})
	if err == nil || !strings.Contains(err.Error(), "text or json") {
		t.Fatalf("bogus progress mode: %v", err)
	}
}

// captureStderrErr silences the flag package's usage spam while asserting
// on the returned error.
func captureStderrErr(f func() error) error {
	r, w, _ := os.Pipe()
	orig := os.Stderr
	os.Stderr = w
	defer func() { os.Stderr = orig; w.Close(); r.Close() }()
	return f()
}

// -topology loads a component tree from JSON, runs the coupled model on
// the event engine, and adds the availability line to the summary.
func TestRunTopology(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topo.json")
	topo := `{"components": [
		{"name": "enclosure", "drives": [0,1,2,3,4,5,6,7],
		 "tt_op": {"scale": 20000, "shape": 1}, "ttr": {"scale": 1000, "shape": 1}}
	]}`
	if err := os.WriteFile(path, []byte(topo), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(context.Background(), []string{"-iterations", "200", "-topology", path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"mission total", "availability:", "unavailability onsets"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTopologyValidation(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "topo.json")
	topo := `{"components": [
		{"name": "enclosure", "drives": [0,1],
		 "tt_op": {"scale": 20000, "shape": 1}, "ttr": {"scale": 1000, "shape": 1}}
	]}`
	if err := os.WriteFile(good, []byte(topo), 0o644); err != nil {
		t.Fatal(err)
	}
	missing := filepath.Join(dir, "nope.json")
	bogus := filepath.Join(dir, "bogus.json")
	if err := os.WriteFile(bogus, []byte(`{"component": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-topology", missing},
		{"-topology", bogus}, // unknown field must be rejected, not ignored
		{"-topology", good, "-vr", "antithetic", "-iterations", "512"}, // coupled + VR unsupported
	} {
		if err := run(context.Background(), args, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunVRCampaign(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{
		"-bias", "8", "-vr", "all", "-batch-block", "128",
		"-max-iterations", "2048", "-batch", "512", "-seed", "3",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"mission total", "variance reduction:", "antithetic pairs"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunVRFixedSize(t *testing.T) {
	// A fixed-size run with -vr routes through the block engine without the
	// campaign orchestrator; the summary must still print.
	var sb strings.Builder
	if err := run(context.Background(), []string{"-vr", "antithetic", "-iterations", "512"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mission total") {
		t.Errorf("output missing summary:\n%s", sb.String())
	}
}

func TestRunVRValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-vr", "bogus"},
		{"-batch-block", "-1"},
		{"-vr", "antithetic", "-batch-block", "3"}, // antithetic needs an even block
	} {
		if err := run(context.Background(), args, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
