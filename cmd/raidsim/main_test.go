package main

import (
	"strings"
	"testing"
)

func TestRunDefaultsReduced(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-iterations", "200"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"mission total", "MTTDL view", "ld+op"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-iterations", "100", "-csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "hours,ddfs_per_1000_groups") {
		t.Errorf("CSV header missing:\n%s", sb.String())
	}
}

func TestRunNoLatentDefects(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-iterations", "100", "-ld-rate", "0"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0 ld+op") {
		t.Errorf("latent defects disabled but output says otherwise:\n%s", sb.String())
	}
}

func TestRunRAID6(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-iterations", "100", "-redundancy", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "redundancy 2") {
		t.Errorf("redundancy not reflected:\n%s", sb.String())
	}
}

func TestRunTraceMode(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-trace", "-seed", "3", "-ld-rate", "3e-4"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"slot 0", "slot 7", "op failures", "defects"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q", want)
		}
	}
}

func TestRunValidation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-drives", "1"}, &sb); err == nil {
		t.Error("single drive accepted")
	}
	if err := run([]string{"-op-beta", "-2"}, &sb); err == nil {
		t.Error("negative shape accepted")
	}
	if err := run([]string{"-iterations", "0"}, &sb); err == nil {
		t.Error("zero iterations accepted")
	}
}
