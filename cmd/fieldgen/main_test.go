package main

import (
	"strings"
	"testing"
)

func TestRunValidation(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, strings.NewReader(""), &sb); err == nil {
		t.Error("missing subcommand accepted")
	}
	if err := run([]string{"bogus"}, strings.NewReader(""), &sb); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"gen", "-pop", "nosuch"}, strings.NewReader(""), &sb); err == nil {
		t.Error("unknown population accepted")
	}
	if err := run([]string{"fit", "a.csv", "b.csv"}, strings.NewReader(""), &sb); err == nil {
		t.Error("two dataset files accepted")
	}
	if err := run([]string{"fit"}, strings.NewReader(""), &sb); err == nil {
		t.Error("empty dataset accepted")
	}
	if err := run([]string{"fit"}, strings.NewReader("hours,censored\nabc,0\n"), &sb); err == nil {
		t.Error("malformed hours accepted")
	}
}

func TestGenThenFitRoundTrip(t *testing.T) {
	var csvOut strings.Builder
	err := run([]string{"gen", "-pop", "vintage3", "-units", "8000", "-seed", "5"},
		strings.NewReader(""), &csvOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csvOut.String(), "hours,censored\n") {
		t.Fatal("CSV header missing")
	}
	var report strings.Builder
	err = run([]string{"fit", "-gof-replicates", "29"},
		strings.NewReader(csvOut.String()), &report)
	if err != nil {
		t.Fatal(err)
	}
	out := report.String()
	for _, want := range []string{"censored MLE", "β=1.4", "goodness of fit"} {
		if !strings.Contains(out, want) {
			t.Errorf("fit report missing %q:\n%s", want, out)
		}
	}
	// Vintage 3's true β is 1.4873; the report should not reject it.
	if strings.Contains(out, "REJECTS") {
		t.Errorf("true Weibull vintage rejected:\n%s", out)
	}
}

func TestFitDetectsMechanismChange(t *testing.T) {
	var csvOut strings.Builder
	err := run([]string{"gen", "-pop", "hdd2", "-units", "3000", "-seed", "6"},
		strings.NewReader(""), &csvOut)
	if err != nil {
		t.Fatal(err)
	}
	var report strings.Builder
	err = run([]string{"fit", "-gof-replicates", "29"},
		strings.NewReader(csvOut.String()), &report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "REJECTS") {
		t.Errorf("HDD2 not rejected:\n%s", report.String())
	}
}

func TestGenSkipsGoF(t *testing.T) {
	var csvOut strings.Builder
	if err := run([]string{"gen", "-pop", "hdd1", "-units", "500"},
		strings.NewReader(""), &csvOut); err != nil {
		t.Fatal(err)
	}
	var report strings.Builder
	if err := run([]string{"fit", "-gof-replicates", "0"},
		strings.NewReader(csvOut.String()), &report); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(report.String(), "goodness of fit") {
		t.Error("GoF ran despite -gof-replicates 0")
	}
}
