package main

import "flag"

// newFlagSet returns a ContinueOnError flag set so run() surfaces parse
// errors instead of exiting.
func newFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet(name, flag.ContinueOnError)
}
