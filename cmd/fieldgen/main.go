// Command fieldgen generates synthetic drive field-return datasets and
// analyzes field datasets: Weibull probability plotting, median-rank
// regression, censored maximum-likelihood fitting, changepoint detection,
// and a parametric-bootstrap goodness-of-fit test.
//
// Generate a dataset (CSV with header "hours,censored"):
//
//	fieldgen gen -pop hdd1|hdd2|hdd3|vintage1|vintage2|vintage3 [-units N] [-window H] [-seed S]
//
// Analyze a dataset from a file or stdin:
//
//	fieldgen fit [-gof-replicates 99] [-seed S] [dataset.csv]
package main

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"raidrel/internal/field"
	"raidrel/internal/fit"
	"raidrel/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fieldgen:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("want a subcommand: gen or fit")
	}
	switch args[0] {
	case "gen":
		return runGen(args[1:], out)
	case "fit":
		return runFit(args[1:], in, out)
	default:
		return fmt.Errorf("unknown subcommand %q (want gen or fit)", args[0])
	}
}

// populations maps CLI names to dataset archetypes.
func populations(units int, window float64) map[string]field.Population {
	pops := map[string]field.Population{
		"hdd1": field.HDD1(),
		"hdd2": field.HDD2(),
		"hdd3": field.HDD3(),
	}
	for i, v := range field.PaperVintages() {
		pops[fmt.Sprintf("vintage%d", i+1)] = v.Population(10000)
	}
	for name, p := range pops {
		if units > 0 {
			p.Units = units
		}
		if window > 0 {
			p.ObservationHours = window
		}
		pops[name] = p
	}
	return pops
}

func runGen(args []string, out io.Writer) error {
	fs := newFlagSet("fieldgen gen")
	pop := fs.String("pop", "hdd1", "population archetype (hdd1, hdd2, hdd3, vintage1..3)")
	units := fs.Int("units", 0, "override population size")
	window := fs.Float64("window", 0, "override observation window, hours")
	seed := fs.Uint64("seed", 1, "RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pops := populations(*units, *window)
	p, ok := pops[*pop]
	if !ok {
		return fmt.Errorf("unknown population %q", *pop)
	}
	obs, err := p.Observe(rng.New(*seed))
	if err != nil {
		return err
	}
	w := csv.NewWriter(out)
	if err := w.Write([]string{"hours", "censored"}); err != nil {
		return err
	}
	for _, o := range obs {
		censored := "0"
		if o.Censored {
			censored = "1"
		}
		if err := w.Write([]string{strconv.FormatFloat(o.Time, 'g', -1, 64), censored}); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func runFit(args []string, in io.Reader, out io.Writer) error {
	fs := newFlagSet("fieldgen fit")
	replicates := fs.Int("gof-replicates", 99, "bootstrap replicates for the goodness-of-fit test (0 skips)")
	seed := fs.Uint64("seed", 1, "RNG seed for the bootstrap")
	if err := fs.Parse(args); err != nil {
		return err
	}
	source := in
	if fs.NArg() > 1 {
		return fmt.Errorf("at most one dataset file")
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		source = f
	}
	obs, err := readDataset(source)
	if err != nil {
		return err
	}
	failures := 0
	for _, o := range obs {
		if !o.Censored {
			failures++
		}
	}
	fmt.Fprintf(out, "dataset: %d units, %d failures, %d suspensions\n",
		len(obs), failures, len(obs)-failures)

	if mrr, err := fit.MedianRankRegression(obs); err == nil {
		fmt.Fprintf(out, "median-rank regression: β=%.4f η=%.4g (plot R²=%.4f)\n",
			mrr.Shape, mrr.Scale, mrr.R2)
	} else {
		fmt.Fprintf(out, "median-rank regression: %v\n", err)
	}
	mle, err := fit.MLE(obs)
	if err != nil {
		return fmt.Errorf("MLE: %w", err)
	}
	fmt.Fprintf(out, "censored MLE:           β=%.4f η=%.4g\n", mle.Shape, mle.Scale)

	if points, err := fit.ProbabilityPlot(obs); err == nil {
		if split, left, right, err := fit.Changepoint(points); err == nil {
			improvement := fit.ChangepointImprovement(points, split, left, right)
			fmt.Fprintf(out, "changepoint:            slopes %.3f → %.3f (RSS improvement %.0f%%)\n",
				left.Slope, right.Slope, improvement*100)
		}
	}
	if *replicates > 0 {
		gof, err := fit.WeibullGoF(obs, *replicates, rng.New(*seed))
		if err != nil {
			return fmt.Errorf("goodness of fit: %w", err)
		}
		verdict := "consistent with a single Weibull"
		if gof.Rejects(0.05) {
			verdict = "REJECTS the single-Weibull hypothesis (mixture / mechanism change likely)"
		}
		fmt.Fprintf(out, "goodness of fit:        D=%.4f p=%.3f (%d replicates) — %s\n",
			gof.Distance, gof.PValue, gof.Replicates, verdict)
	}
	return nil
}

// readDataset parses "hours,censored" CSV (header optional).
func readDataset(r io.Reader) ([]fit.Observation, error) {
	reader := csv.NewReader(r)
	reader.FieldsPerRecord = 2
	var obs []fit.Observation
	for line := 1; ; line++ {
		rec, err := reader.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if line == 1 && rec[0] == "hours" {
			continue
		}
		hours, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad hours %q", line, rec[0])
		}
		censored := rec[1] == "1" || rec[1] == "true"
		obs = append(obs, fit.Observation{Time: hours, Censored: censored})
	}
	if len(obs) == 0 {
		return nil, fmt.Errorf("empty dataset")
	}
	return obs, nil
}
